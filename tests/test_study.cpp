// The declarative study registry and its shard-cache resume contract:
// registered studies, cached sweeps resuming bit-identically for any
// thread count, fingerprint invalidation, and the study runners writing
// byte-identical CSVs across fresh/resume and standalone/suite paths.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exec/shard_cache.hpp"
#include "exec/sweep_scheduler.hpp"
#include "exec/thread_pool.hpp"
#include "net/experiment.hpp"
#include "sim/trace.hpp"
#include "study.hpp"

namespace {

namespace net = tcw::net;
namespace exec = tcw::exec;
namespace bench = tcw::bench;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void truncate_to_half(const std::string& path) {
  const std::string bytes = slurp(path);
  ASSERT_GT(bytes.size(), 16u);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(),
            static_cast<std::streamsize>(bytes.size() / 2));
}

void expect_bitwise_equal(const std::vector<net::SweepPoint>& a,
                          const std::vector<net::SweepPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].constraint, b[i].constraint);
    EXPECT_EQ(a[i].p_loss, b[i].p_loss);
    EXPECT_EQ(a[i].ci95, b[i].ci95);
    EXPECT_EQ(a[i].mean_wait, b[i].mean_wait);
    EXPECT_EQ(a[i].mean_scheduling, b[i].mean_scheduling);
    EXPECT_EQ(a[i].utilization, b[i].utilization);
    EXPECT_EQ(a[i].sender_loss_frac, b[i].sender_loss_frac);
    EXPECT_EQ(a[i].receiver_loss_frac, b[i].receiver_loss_frac);
    EXPECT_EQ(a[i].messages, b[i].messages);
  }
}

net::SweepConfig small_config() {
  net::SweepConfig cfg;
  cfg.offered_load = 0.5;
  cfg.message_length = 25.0;
  cfg.t_end = 3000.0;
  cfg.warmup = 300.0;
  cfg.replications = 2;
  return cfg;
}

tcw::core::ControlPolicy heuristic_policy(double k) {
  return tcw::core::ControlPolicy::optimal(k, 40.0);
}

// All cached-sweep legs in this file go through the one entry point.
net::ScheduledSweep schedule_cached(exec::SweepScheduler& scheduler,
                                    std::string name,
                                    const net::SweepConfig& cfg,
                                    const std::vector<double>& grid,
                                    const net::SweepCacheBinding& binding) {
  return net::run_sweep(
      {.config = cfg, .constraints = grid, .make_policy = heuristic_policy},
      {.scheduler = &scheduler, .name = std::move(name), .cache = binding});
}

TEST(StudyRegistry, ListsEveryRegisteredStudy) {
  const std::vector<std::string> expected{
      "ablation_theorem1",      "ablation_window_size",
      "ablation_split_fraction", "ablation_adaptive_width",
      "ablation_asynchrony",    "priority_classes",
      "policy_grid",            "large_n",
      "multichannel"};
  const auto& entries = bench::registry();
  ASSERT_EQ(entries.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(entries[i].spec.name, expected[i]);
    EXPECT_FALSE(entries[i].spec.summary.empty());
    EXPECT_FALSE(entries[i].spec.figure.empty());
    EXPECT_EQ(entries[i].spec.default_csv, expected[i] + ".csv");
    EXPECT_NE(entries[i].make(), nullptr);
  }
  EXPECT_NE(bench::find_study("priority_classes"), nullptr);
  EXPECT_EQ(bench::find_study("no_such_study"), nullptr);
}

TEST(StudyRegistry, MarkdownTableCoversEveryStudy) {
  const std::string table = bench::registry_markdown_table();
  for (const bench::StudyEntry& e : bench::registry()) {
    EXPECT_NE(table.find("`" + e.spec.name + "`"), std::string::npos);
  }
}

TEST(StudyCache, TruncatedResumeBitIdenticalForAnyThreadCount) {
  const net::SweepConfig cfg = small_config();
  const std::vector<double> grid{25.0, 50.0};
  const std::string store =
      ::testing::TempDir() + "/study_cache_resume.shards";
  const net::SweepCacheBinding no_cache{};

  // Reference: the uncached scheduler path.
  std::vector<net::SweepPoint> reference;
  {
    exec::ThreadPool pool(2);
    exec::SweepScheduler scheduler(pool);
    auto handle = schedule_cached(scheduler, "ref", cfg, grid, no_cache);
    scheduler.run();
    EXPECT_EQ(handle.cached_jobs(), 0u);
    reference = handle.points();
  }

  // Leg 1: fresh store, everything executes and is persisted.
  {
    exec::ShardCache cache(store, exec::ShardCache::Mode::Fresh);
    exec::ThreadPool pool(3);
    exec::SweepScheduler scheduler(pool);
    auto handle = schedule_cached(scheduler, "leg1", cfg, grid,
                                  net::SweepCacheBinding{&cache, "tag"});
    EXPECT_EQ(handle.cached_jobs(), 0u);
    scheduler.run();
    expect_bitwise_equal(handle.points(), reference);
    EXPECT_EQ(cache.entries(), handle.jobs());
  }

  // Interrupt: chop the store in half, losing a shard mid-record.
  truncate_to_half(store);

  // Leg 2: resume on a different thread count; the surviving shards are
  // skipped, the rest recompute, and the reduction is bit-identical.
  {
    exec::ShardCache cache(store, exec::ShardCache::Mode::Resume);
    EXPECT_TRUE(cache.recovered_corruption());
    exec::ThreadPool pool(1);
    exec::SweepScheduler scheduler(pool);
    auto handle = schedule_cached(scheduler, "leg2", cfg, grid,
                                  net::SweepCacheBinding{&cache, "tag"});
    EXPECT_GT(handle.cached_jobs(), 0u);
    EXPECT_LT(handle.cached_jobs(), handle.jobs());
    scheduler.run();
    expect_bitwise_equal(handle.points(), reference);
  }

  // Leg 3: fully warm resume; nothing left to schedule.
  {
    exec::ShardCache cache(store, exec::ShardCache::Mode::Resume);
    EXPECT_FALSE(cache.recovered_corruption());
    exec::ThreadPool pool(2);
    exec::SweepScheduler scheduler(pool);
    auto handle = schedule_cached(scheduler, "leg3", cfg, grid,
                                  net::SweepCacheBinding{&cache, "tag"});
    EXPECT_EQ(handle.cached_jobs(), handle.jobs());
    scheduler.run();
    expect_bitwise_equal(handle.points(), reference);
  }
}

TEST(StudyCache, FingerprintChangeInvalidatesStaleShards) {
  const std::string store =
      ::testing::TempDir() + "/study_cache_fingerprint.shards";
  const std::vector<double> grid{25.0};
  {
    exec::ShardCache cache(store, exec::ShardCache::Mode::Fresh);
    exec::ThreadPool pool(2);
    exec::SweepScheduler scheduler(pool);
    schedule_cached(scheduler, "warm", small_config(), grid,
                    net::SweepCacheBinding{&cache, "tag"});
    scheduler.run();
  }
  // Same seeds, changed run length: the fingerprint differs, so the
  // stale shards never hit.
  {
    exec::ShardCache cache(store, exec::ShardCache::Mode::Resume);
    net::SweepConfig longer = small_config();
    longer.t_end = 4000.0;
    exec::ThreadPool pool(2);
    exec::SweepScheduler scheduler(pool);
    auto handle = schedule_cached(scheduler, "changed", longer, grid,
                                  net::SweepCacheBinding{&cache, "tag"});
    EXPECT_EQ(handle.cached_jobs(), 0u);
    scheduler.run();
  }
  // Same config, different cache tag (another ablation arm sharing the
  // seeds by design): also a miss.
  {
    exec::ShardCache cache(store, exec::ShardCache::Mode::Resume);
    exec::ThreadPool pool(2);
    exec::SweepScheduler scheduler(pool);
    auto handle = schedule_cached(scheduler, "other_arm", small_config(),
                                  grid,
                                  net::SweepCacheBinding{&cache, "other-tag"});
    EXPECT_EQ(handle.cached_jobs(), 0u);
    scheduler.run();
  }
}

TEST(StudyRunner, LossCurveStudyResumeWritesIdenticalCsv) {
  const std::string dir = ::testing::TempDir() + "/tcw_study_ws";
  std::filesystem::remove_all(dir);
  const std::vector<std::string> shrink{"--t-end=3000", "--reps=1"};

  bench::StudyCommonOptions fresh;
  fresh.cache_dir = dir;
  fresh.csv = dir + "/fresh.csv";
  ASSERT_EQ(bench::run_study("ablation_window_size", fresh, shrink), 0);

  truncate_to_half(dir + "/ablation_window_size.shards");

  bench::StudyCommonOptions resume = fresh;
  resume.resume = true;
  resume.csv = dir + "/resume.csv";
  ASSERT_EQ(bench::run_study("ablation_window_size", resume, shrink), 0);

  EXPECT_EQ(slurp(fresh.csv), slurp(resume.csv));
}

TEST(StudyRunner, GenericStudyResumeWritesIdenticalCsv) {
  const std::string dir = ::testing::TempDir() + "/tcw_study_prio";
  std::filesystem::remove_all(dir);
  const std::vector<std::string> shrink{"--t-end=3000"};

  bench::StudyCommonOptions fresh;
  fresh.cache_dir = dir;
  fresh.csv = dir + "/fresh.csv";
  ASSERT_EQ(bench::run_study("priority_classes", fresh, shrink), 0);

  bench::StudyCommonOptions resume = fresh;
  resume.resume = true;
  resume.csv = dir + "/resume.csv";
  ASSERT_EQ(bench::run_study("priority_classes", resume, shrink), 0);

  EXPECT_EQ(slurp(fresh.csv), slurp(resume.csv));
}

TEST(StudyRunner, SuiteCsvMatchesStandaloneCsv) {
  // The acceptance contract of study_tool --suite: a study's CSV out of
  // the shared suite scheduler equals its standalone run byte for byte.
  const std::string dir = ::testing::TempDir() + "/tcw_study_suite";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  bench::StudyCommonOptions standalone;
  standalone.quick = true;
  standalone.threads = 1;
  standalone.csv = dir + "/standalone.csv";
  ASSERT_EQ(bench::run_study("ablation_window_size", standalone), 0);

  // The suite writes each study's default CSV into the working
  // directory; run it from the temp dir.
  const std::filesystem::path old_cwd = std::filesystem::current_path();
  std::filesystem::current_path(dir);
  bench::StudyCommonOptions suite;
  suite.quick = true;
  suite.threads = 2;
  const int rc = bench::run_study_suite(suite, {"ablation_window_size"});
  std::filesystem::current_path(old_cwd);
  ASSERT_EQ(rc, 0);

  EXPECT_EQ(slurp(standalone.csv),
            slurp(dir + "/ablation_window_size.csv"));
}

TEST(StudyTrace, TraceRequestAttachesToTheNamedSweep) {
  // A StudyCommonOptions trace request rides into the named sweep as one
  // SweepConfig::TraceRequest value; a cache must not swallow the traced
  // shard (traced jobs always execute).
  const std::string dir = ::testing::TempDir() + "/tcw_study_trace";
  std::filesystem::remove_all(dir);
  const std::vector<std::string> shrink{"--t-end=3000", "--reps=1"};

  bench::StudyCommonOptions warm;
  warm.cache_dir = dir;
  warm.csv = dir + "/warm.csv";
  ASSERT_EQ(bench::run_study("ablation_window_size", warm, shrink), 0);

  tcw::sim::TraceLog log;
  bench::StudyCommonOptions traced = warm;
  traced.resume = true;
  traced.csv = dir + "/traced.csv";
  traced.trace = {&log, 0, 0};
  traced.trace_sweep = "width1.000";
  ASSERT_EQ(bench::run_study("ablation_window_size", traced, shrink), 0);

  EXPECT_GT(log.total_recorded(), 0u);
  EXPECT_EQ(slurp(warm.csv), slurp(traced.csv));
}

}  // namespace
