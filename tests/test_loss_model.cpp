#include "analysis/loss_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/mg1.hpp"
#include "analysis/splitting.hpp"
#include "util/contract.hpp"

namespace {

namespace analysis = tcw::analysis;

analysis::ProtocolModelConfig paper_config(double rho, double m) {
  analysis::ProtocolModelConfig cfg;
  cfg.offered_load = rho;
  cfg.message_length = m;
  return cfg;
}

TEST(EffectiveWindowLoad, ScalesWithAcceptance) {
  const double nu_star = analysis::optimal_window_load();
  EXPECT_DOUBLE_EQ(analysis::effective_window_load(1.0), nu_star);
  EXPECT_DOUBLE_EQ(analysis::effective_window_load(0.5), 0.5 * nu_star);
  EXPECT_DOUBLE_EQ(analysis::effective_window_load(0.0), 0.0);
}

TEST(ServiceDistribution, NoSchedulingIsPureTransmission) {
  auto cfg = paper_config(0.5, 25.0);
  cfg.scheduling = analysis::SchedulingModel::None;
  const auto s = analysis::service_distribution(cfg, 1.0);
  EXPECT_DOUBLE_EQ(s.at(26), 1.0);  // M + 1 detection slot
  EXPECT_DOUBLE_EQ(s.mean(), 26.0);
}

TEST(ServiceDistribution, GeometricAddsMatchedMean) {
  auto cfg = paper_config(0.5, 25.0);
  const double nu = 1.0;
  const auto s = analysis::service_distribution(cfg, nu);
  EXPECT_NEAR(s.mean(), 26.0 + analysis::conditional_scheduling_mean(nu),
              1e-6);
  EXPECT_DOUBLE_EQ(s.at(25), 0.0);  // nothing faster than the transmission
}

TEST(ServiceDistribution, ExactConditionalAddsMatchedMean) {
  auto cfg = paper_config(0.5, 25.0);
  cfg.scheduling = analysis::SchedulingModel::ExactConditional;
  const double nu = 1.3;
  const auto s = analysis::service_distribution(cfg, nu);
  EXPECT_NEAR(s.mean(), 26.0 + analysis::conditional_scheduling_mean(nu),
              1e-6);
}

TEST(ServiceDistribution, ZeroLoadDegeneratesToTransmission) {
  auto cfg = paper_config(0.5, 25.0);
  const auto s = analysis::service_distribution(cfg, 0.0);
  EXPECT_DOUBLE_EQ(s.at(26), 1.0);
}

TEST(ServiceDistribution, FractionalMessageLengthRejected) {
  auto cfg = paper_config(0.5, 25.5);
  EXPECT_THROW(analysis::service_distribution(cfg, 1.0),
               tcw::ContractViolation);
}

TEST(ControlledLoss, AnchorsAtClosedFormForKZero) {
  const auto cfg = paper_config(0.5, 25.0);
  const auto pt = analysis::controlled_loss_at(cfg, 0.0, 0.9);
  const double rho0 = cfg.lambda() * 26.0;
  EXPECT_NEAR(pt.p_loss, rho0 / (1.0 + rho0), 1e-6);
  EXPECT_NEAR(pt.sched_mean, 0.0, 1e-6);  // all arrivals balk: nu_eff ~ 0
}

TEST(ControlledLoss, FixpointIsInsensitiveToInitialGuess) {
  const auto cfg = paper_config(0.5, 25.0);
  const auto lo = analysis::controlled_loss_at(cfg, 50.0, 0.0);
  const auto hi = analysis::controlled_loss_at(cfg, 50.0, 1.0);
  EXPECT_NEAR(lo.p_loss, hi.p_loss, 1e-7);
}

TEST(ControlledLoss, CurveIsMonotoneDecreasing) {
  const auto cfg = paper_config(0.5, 25.0);
  const auto curve = analysis::controlled_loss_curve(
      cfg, {0.0, 25.0, 50.0, 100.0, 200.0, 400.0});
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].p_loss, curve[i - 1].p_loss + 1e-9) << i;
  }
  EXPECT_LT(curve.back().p_loss, 1e-4);  // rho < 1: loss dies out
}

TEST(ControlledLoss, HigherLoadLosesMore) {
  const auto grid = std::vector<double>{50.0, 100.0, 200.0};
  const auto low = analysis::controlled_loss_curve(paper_config(0.25, 25.0),
                                                   grid);
  const auto high = analysis::controlled_loss_curve(paper_config(0.75, 25.0),
                                                    grid);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_GT(high[i].p_loss, low[i].p_loss) << i;
  }
}

TEST(ControlledLoss, LongerMessagesNeedProportionallyLargerK) {
  // At the same rho' and K measured in messages (K = c*M), loss should be
  // in the same ballpark; at equal absolute K, larger M loses more.
  const auto m25 = analysis::controlled_loss_at(paper_config(0.5, 25.0),
                                                100.0, 0.1);
  const auto m100 = analysis::controlled_loss_at(paper_config(0.5, 100.0),
                                                 100.0, 0.1);
  EXPECT_GT(m100.p_loss, m25.p_loss);
}

TEST(ControlledLoss, OverloadStillConverges) {
  const auto cfg = paper_config(1.5, 25.0);
  const auto pt = analysis::controlled_loss_at(cfg, 100.0, 0.5);
  EXPECT_GT(pt.p_loss, 0.3);  // must shed at least 1 - 1/rho
  EXPECT_LT(pt.p_loss, 1.0);
  EXPECT_LE(pt.iterations, cfg.fixpoint_max_iters);
}

TEST(ControlledLoss, SchedulingModelsAgreeClosely) {
  auto geo = paper_config(0.5, 25.0);
  auto exact = paper_config(0.5, 25.0);
  exact.scheduling = analysis::SchedulingModel::ExactConditional;
  const auto a = analysis::controlled_loss_at(geo, 75.0, 0.1);
  const auto b = analysis::controlled_loss_at(exact, 75.0, 0.1);
  EXPECT_NEAR(a.p_loss, b.p_loss, 0.01);
}

TEST(ControlledLoss, UnsortedGridRejected) {
  const auto cfg = paper_config(0.5, 25.0);
  EXPECT_THROW(analysis::controlled_loss_curve(cfg, {50.0, 25.0}),
               tcw::ContractViolation);
}

TEST(FcfsBaseline, WorseThanControlledAtEveryK) {
  const auto cfg = paper_config(0.5, 25.0);
  const auto controlled = analysis::controlled_loss_curve(
      cfg, {25.0, 50.0, 100.0, 200.0});
  for (const auto& pt : controlled) {
    const double fcfs = analysis::fcfs_nodiscard_loss(cfg, pt.K);
    EXPECT_GE(fcfs, pt.p_loss - 1e-6) << pt.K;
  }
}

TEST(FcfsBaseline, MonotoneDecreasing) {
  const auto cfg = paper_config(0.5, 25.0);
  double prev = 1.0;
  for (const double k : {0.0, 25.0, 50.0, 100.0, 200.0, 400.0}) {
    const double loss = analysis::fcfs_nodiscard_loss(cfg, k);
    EXPECT_LE(loss, prev + 1e-9);
    prev = loss;
  }
}

TEST(FcfsBaseline, UnstableQueueLosesEverything) {
  const auto cfg = paper_config(1.2, 25.0);
  EXPECT_DOUBLE_EQ(analysis::fcfs_nodiscard_loss(cfg, 500.0), 1.0);
}

class ControlledLossGridTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ControlledLossGridTest, LossIsAProbabilityEverywhere) {
  const auto [rho, m] = GetParam();
  const auto cfg = paper_config(rho, m);
  const auto curve = analysis::controlled_loss_curve(
      cfg, {0.0, m, 2 * m, 4 * m, 8 * m, 16 * m});
  for (const auto& pt : curve) {
    EXPECT_GE(pt.p_loss, 0.0);
    EXPECT_LE(pt.p_loss, 1.0);
    EXPECT_GE(pt.sched_mean, -1e-9);
    EXPECT_GT(pt.rho, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperPanels, ControlledLossGridTest,
    ::testing::Values(std::make_tuple(0.25, 25.0), std::make_tuple(0.25, 100.0),
                      std::make_tuple(0.50, 25.0), std::make_tuple(0.50, 100.0),
                      std::make_tuple(0.75, 25.0),
                      std::make_tuple(0.75, 100.0)));

}  // namespace
