// Distributed sweep execution: lease claim/reclaim semantics, the shared
// segmented ShardCache, and the worker/merge drivers producing CSVs
// byte-identical to a single-process run -- including after a worker
// "crash" (abandoned leases + torn segment).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exec/dist_gate.hpp"
#include "exec/dist_lease.hpp"
#include "exec/shard_cache.hpp"
#include "exec/sweep_scheduler.hpp"
#include "exec/thread_pool.hpp"
#include "study.hpp"
#include "study_dist.hpp"

namespace {

namespace exec = tcw::exec;
namespace bench = tcw::bench;
namespace fs = std::filesystem;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void sleep_seconds(double s) {
  std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

/// Fresh scratch directory under the gtest temp root.
std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// The fast embedding configuration test_study also uses: 9 jobs total.
const std::vector<std::string> kWindowArgs{"--t-end=3000", "--reps=1"};

TEST(DistLease, ClaimReleaseContention) {
  const std::string dir = scratch_dir("lease_basic");
  exec::LeaseManager a({dir, "worker-a", 60.0, 0.0});
  exec::LeaseManager b({dir, "worker-b", 60.0, 0.0});
  const exec::ShardKey key{0x1234u, 0x5678u};

  EXPECT_TRUE(a.try_claim(key));
  EXPECT_EQ(a.held(), 1u);
  EXPECT_FALSE(b.try_claim(key));  // live lease: contention, no reclaim
  EXPECT_EQ(b.contended(), 1u);
  EXPECT_EQ(b.reclaimed(), 0u);

  a.release(key);
  EXPECT_EQ(a.held(), 0u);
  EXPECT_TRUE(b.try_claim(key));
  b.release(key);
  EXPECT_EQ(exec::count_live_leases(dir, 60.0), 0u);
}

TEST(DistLease, DestructorReleasesHeldLeases) {
  const std::string dir = scratch_dir("lease_dtor");
  const exec::ShardKey key{1u, 2u};
  {
    exec::LeaseManager a({dir, "worker-a", 60.0, 0.0});
    EXPECT_TRUE(a.try_claim(key));
    EXPECT_EQ(exec::count_live_leases(dir, 60.0), 1u);
  }
  // Clean shutdown must not leave a lease for others to wait out.
  EXPECT_EQ(exec::count_live_leases(dir, 60.0), 0u);
}

TEST(DistLease, StaleLeaseReclaim) {
  const std::string dir = scratch_dir("lease_stale");
  const exec::ShardKey key{42u, 43u};
  exec::LeaseManager dead({dir, "dead", 0.05, 0.0});
  EXPECT_TRUE(dead.try_claim(key));
  dead.abandon_for_test();  // simulate SIGKILL: the lease file stays
  EXPECT_EQ(exec::count_live_leases(dir, 60.0), 1u);

  exec::LeaseManager b({dir, "worker-b", 0.05, 0.0});
  sleep_seconds(0.15);  // let the lease age past stale_seconds
  EXPECT_TRUE(b.try_claim(key));
  EXPECT_EQ(b.reclaimed(), 1u);
  EXPECT_EQ(b.held(), 1u);
  b.release(key);
}

TEST(DistLease, HeartbeatKeepsLeaseFresh) {
  const std::string dir = scratch_dir("lease_beat");
  const exec::ShardKey key{7u, 8u};
  exec::LeaseManager a({dir, "worker-a", 60.0, 0.05});
  EXPECT_TRUE(a.try_claim(key));
  a.start_heartbeat();
  sleep_seconds(0.4);
  // The shard is taking long, but heartbeats keep refreshing the mtime:
  // a peer that treats 0.3s as stale must NOT reclaim it.
  exec::LeaseManager b({dir, "worker-b", 0.3, 0.0});
  EXPECT_FALSE(b.try_claim(key));
  EXPECT_EQ(b.reclaimed(), 0u);
  a.stop_heartbeat();
  sleep_seconds(0.4);  // now it really goes stale
  EXPECT_TRUE(b.try_claim(key));
  EXPECT_EQ(b.reclaimed(), 1u);
  a.abandon_for_test();  // b owns the lease file now; a must not unlink it
  b.release(key);
}

TEST(DistGate, EveryKeyHasExactlyOneHomeWorker) {
  for (std::uint64_t i = 0; i < 64; ++i) {
    const exec::ShardKey key{0x9E3779B97F4A7C15ULL * (i + 1), i * 31 + 7};
    for (unsigned total : {1u, 2u, 4u, 7u}) {
      unsigned homes = 0;
      for (unsigned idx = 0; idx < total; ++idx) {
        if (exec::DistWorkerGate::is_home(key, idx, total)) ++homes;
      }
      EXPECT_EQ(homes, 1u) << "key " << i << " total " << total;
    }
  }
}

TEST(SharedStore, SegmentsMergeAcrossWriters) {
  const std::string store = scratch_dir("shared_seg") + "/study.shards";
  const exec::ShardKey k1{1u, 10u};
  const exec::ShardKey k2{2u, 10u};

  exec::ShardCache a(store, exec::ShardCache::SharedOptions{"a"});
  exec::ShardCache b(store, exec::ShardCache::SharedOptions{"b"});
  a.insert(k1, {1.5, 2.5});
  b.insert(k2, {3.5});

  // b picks up a's append via rescan (and not its own records twice).
  EXPECT_FALSE(b.contains(k1));
  EXPECT_EQ(b.rescan(), 1u);
  EXPECT_TRUE(b.contains(k1));
  EXPECT_TRUE(b.contains(k2));

  // A third reader sees both writers' segments at open.
  exec::ShardCache c(store, exec::ShardCache::SharedOptions{"c"});
  EXPECT_EQ(c.entries(), 2u);
  std::vector<double> payload;
  EXPECT_TRUE(c.lookup(k1, &payload));
  EXPECT_EQ(payload, (std::vector<double>{1.5, 2.5}));
}

TEST(SharedStore, TornTailIsRetriedNotCorrupt) {
  const std::string dir = scratch_dir("shared_torn");
  const std::string store = dir + "/study.shards";
  exec::ShardCache a(store, exec::ShardCache::SharedOptions{"a"});
  a.insert({1u, 9u}, {1.0});
  a.insert({2u, 9u}, {2.0});

  // Find a's segment and chop off the last 8 bytes: a torn tail exactly
  // as a killed writer would leave it.
  std::string seg;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().string().find(".w-a") != std::string::npos) {
      seg = e.path().string();
    }
  }
  ASSERT_FALSE(seg.empty());
  const std::string bytes = slurp(seg);
  fs::resize_file(seg, bytes.size() - 8);

  exec::ShardCache b(store, exec::ShardCache::SharedOptions{"b"});
  EXPECT_TRUE(b.contains({1u, 9u}));   // intact prefix kept
  EXPECT_FALSE(b.contains({2u, 9u}));  // torn record not consumed
  EXPECT_EQ(b.corrupt_segments(), 0u);  // torn != corrupt: may still grow
}

TEST(SharedStore, PerSegmentCorruptionKeepsOtherSegments) {
  const std::string dir = scratch_dir("shared_corrupt");
  const std::string store = dir + "/study.shards";
  exec::ShardCache a(store, exec::ShardCache::SharedOptions{"a"});
  exec::ShardCache b(store, exec::ShardCache::SharedOptions{"b"});
  a.insert({1u, 5u}, {1.0});
  a.insert({2u, 5u}, {2.0});
  b.insert({3u, 5u}, {3.0});

  // Flip a byte inside a's SECOND record: complete record, bad checksum.
  std::string seg;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().string().find(".w-a") != std::string::npos) {
      seg = e.path().string();
    }
  }
  ASSERT_FALSE(seg.empty());
  std::string bytes = slurp(seg);
  bytes[bytes.size() - 12] ^= 0x5A;
  {
    std::ofstream out(seg, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  exec::ShardCache c(store, exec::ShardCache::SharedOptions{"c"});
  EXPECT_TRUE(c.contains({1u, 5u}));   // valid prefix of the bad segment
  EXPECT_FALSE(c.contains({2u, 5u}));  // corrupt record dropped
  EXPECT_TRUE(c.contains({3u, 5u}));   // other segments unaffected
  EXPECT_EQ(c.corrupt_segments(), 1u);

  // Merge-time compaction folds the surviving records into the base
  // store and removes every segment file.
  EXPECT_TRUE(c.compact_shared());
  exec::ShardCache d(store, exec::ShardCache::SharedOptions{"d"});
  EXPECT_EQ(d.entries(), 2u);
  EXPECT_EQ(d.corrupt_segments(), 0u);
  std::size_t segment_files = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().string().find(".seg") != std::string::npos) ++segment_files;
  }
  EXPECT_EQ(segment_files, 0u);
}

TEST(SharedStore, LegacySingleProcessModeUnchanged) {
  // The shared mode must not leak into the legacy resume path: a plain
  // Resume cache still compacts its own store at open.
  const std::string store = scratch_dir("shared_legacy") + "/solo.shards";
  {
    exec::ShardCache cache(store, exec::ShardCache::Mode::Fresh);
    cache.insert({1u, 1u}, {1.0});
    EXPECT_FALSE(cache.shared());
    EXPECT_EQ(cache.rescan(), 0u);  // no-op outside shared mode
    EXPECT_FALSE(cache.compact_shared());
  }
  exec::ShardCache cache(store, exec::ShardCache::Mode::Resume);
  EXPECT_EQ(cache.loaded(), 1u);
}

/// Reference CSV: the ordinary single-process run.
std::string single_process_csv(const std::string& study,
                               const std::string& dir,
                               const std::vector<std::string>& extra) {
  const std::string csv = dir + "/single.csv";
  bench::StudyCommonOptions common;
  common.threads = 1;
  common.csv = csv;
  EXPECT_EQ(bench::run_study(study, common, extra), 0);
  return slurp(csv);
}

TEST(DistExec, PartitionedWorkersThenMergeByteIdentical) {
  const std::string dir = scratch_dir("dist_partition");
  const std::string reference =
      single_process_csv("ablation_window_size", dir, kWindowArgs);

  bench::StudyCommonOptions common;
  common.threads = 2;
  common.cache_dir = dir + "/cache";
  bench::DistOptions dist;
  dist.total = 2;
  dist.steal = false;
  dist.heartbeat_seconds = 0;
  for (unsigned idx : {0u, 1u}) {
    dist.index = idx;
    dist.worker_id = "w" + std::to_string(idx);
    EXPECT_EQ(bench::run_study_workers(common, dist,
                                       {"ablation_window_size"}, kWindowArgs),
              0);
    EXPECT_TRUE(fs::exists(common.cache_dir + "/workers/w" +
                           std::to_string(idx) + ".json"));
  }

  bench::StudyCommonOptions merge_common;
  merge_common.threads = 1;
  merge_common.cache_dir = common.cache_dir;
  merge_common.csv = dir + "/merged.csv";
  bench::DistOptions merge_dist;
  EXPECT_EQ(bench::run_study_merge(merge_common, merge_dist,
                                   {"ablation_window_size"}, kWindowArgs),
            0);
  EXPECT_EQ(slurp(dir + "/merged.csv"), reference);
  // Compaction ran: segments folded into the base store.
  EXPECT_TRUE(fs::exists(common.cache_dir + "/ablation_window_size.shards"));
  for (const auto& e : fs::directory_iterator(common.cache_dir)) {
    EXPECT_EQ(e.path().string().find(".seg"), std::string::npos)
        << e.path().string();
  }
}

TEST(DistExec, MergeRefusesWhileShardsMissing) {
  const std::string dir = scratch_dir("dist_missing");
  bench::StudyCommonOptions common;
  common.threads = 1;
  common.cache_dir = dir + "/cache";
  bench::DistOptions dist;
  dist.total = 2;  // only worker 0 runs; worker 1's partition is missing
  dist.index = 0;
  dist.steal = false;
  dist.worker_id = "w0";
  dist.heartbeat_seconds = 0;
  EXPECT_EQ(bench::run_study_workers(common, dist, {"ablation_window_size"},
                                     kWindowArgs),
            0);

  bench::StudyCommonOptions merge_common;
  merge_common.cache_dir = common.cache_dir;
  merge_common.csv = dir + "/merged.csv";
  EXPECT_EQ(bench::run_study_merge(merge_common, bench::DistOptions{},
                                   {"ablation_window_size"}, kWindowArgs),
            1);
  EXPECT_FALSE(fs::exists(dir + "/merged.csv"));
}

TEST(DistExec, CrashedWorkerLeasesReclaimedMergeByteIdentical) {
  const std::string dir = scratch_dir("dist_crash");
  const std::string study = "ablation_window_size";
  const std::string reference = single_process_csv(study, dir, kWindowArgs);
  const std::string cache_dir = dir + "/cache";

  // Enumerate the shard universe exactly as a worker would (shared cache
  // + gate), without running anything.
  std::vector<exec::ShardKey> universe;
  {
    exec::ThreadPool pool(1);
    exec::SweepScheduler scheduler(pool);
    exec::ShardCache cache(bench::study_store_path(cache_dir, study),
                           exec::ShardCache::SharedOptions{"probe"});
    exec::CoverageGate gate;
    const bench::StudyEntry* entry = bench::find_study(study);
    ASSERT_NE(entry, nullptr);
    auto instance = entry->make();
    {
      tcw::Flags flags(study, "probe");
      instance->register_flags(flags);
      std::vector<const char*> argv{study.c_str()};
      for (const std::string& a : kWindowArgs) argv.push_back(a.c_str());
      ASSERT_TRUE(
          flags.parse(static_cast<int>(argv.size()), argv.data()));
    }
    bench::StudyCommonOptions probe_common;
    bench::StudyContext ctx(entry->spec, probe_common, scheduler, &cache);
    ctx.set_gate(&gate);
    instance->schedule(ctx);
    universe = gate.universe();
  }
  ASSERT_GE(universe.size(), 4u);

  // Simulate a worker killed mid-run: it held leases on two shards (never
  // released, files left behind) and left a torn half-record segment.
  {
    exec::LeaseManager dead({cache_dir + "/leases", "dead", 60.0, 0.0});
    ASSERT_TRUE(dead.try_claim(universe[0]));
    ASSERT_TRUE(dead.try_claim(universe[1]));
    dead.abandon_for_test();
  }
  {
    const std::string seg =
        bench::study_store_path(cache_dir, study) + ".w-dead-p0.seg";
    std::FILE* f = std::fopen(seg.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char torn[] = "TCWSHC1\n\x01\x02\x03";  // header + partial record
    std::fwrite(torn, 1, sizeof torn - 1, f);
    std::fclose(f);
  }
  ASSERT_EQ(exec::count_live_leases(cache_dir + "/leases", 60.0), 2u);

  sleep_seconds(0.15);  // let the dead worker's leases go stale

  bench::StudyCommonOptions common;
  common.threads = 2;
  common.cache_dir = cache_dir;
  bench::DistOptions dist;  // drain: partition 0/1, steal everything
  dist.worker_id = "restarted";
  dist.stale_seconds = 0.1;
  dist.heartbeat_seconds = 0;
  EXPECT_EQ(bench::run_study_workers(common, dist, {study}, kWindowArgs), 0);

  // The restarted worker must have reclaimed both abandoned leases.
  const std::string sidecar =
      slurp(cache_dir + "/workers/restarted.json");
  EXPECT_NE(sidecar.find("\"reclaimed\":2"), std::string::npos) << sidecar;

  bench::StudyCommonOptions merge_common;
  merge_common.cache_dir = cache_dir;
  merge_common.csv = dir + "/merged.csv";
  bench::DistOptions merge_dist;
  merge_dist.stale_seconds = 0.1;
  EXPECT_EQ(
      bench::run_study_merge(merge_common, merge_dist, {study}, kWindowArgs),
      0);
  EXPECT_EQ(slurp(dir + "/merged.csv"), reference);
  // Merge swept the stale leases away with the segments.
  EXPECT_EQ(exec::count_live_leases(cache_dir + "/leases", 1e9), 0u);
}

/// Parse the flat {"name":count,...} object that follows `marker` in
/// `text` (worker sidecar "registry" / merge manifest "merged_registry").
std::map<std::string, std::uint64_t> parse_counter_object(
    const std::string& text, const std::string& marker) {
  std::map<std::string, std::uint64_t> out;
  std::size_t at = text.find(marker);
  EXPECT_NE(at, std::string::npos) << marker;
  if (at == std::string::npos) return out;
  std::size_t i = text.find('{', at + marker.size());
  EXPECT_NE(i, std::string::npos);
  ++i;
  while (i < text.size() && text[i] != '}') {
    const std::size_t q0 = text.find('"', i);
    const std::size_t q1 = text.find('"', q0 + 1);
    const std::size_t colon = text.find(':', q1 + 1);
    if (q0 == std::string::npos || q1 == std::string::npos ||
        colon == std::string::npos) {
      ADD_FAILURE() << "malformed counter object after " << marker;
      break;
    }
    const std::string name = text.substr(q0 + 1, q1 - q0 - 1);
    out[name] = std::strtoull(text.c_str() + colon + 1, nullptr, 10);
    const std::size_t next = text.find_first_of(",}", colon + 1);
    if (next == std::string::npos) break;
    i = text[next] == ',' ? next + 1 : next;
  }
  return out;
}

TEST(DistExec, MergedRegistryEqualsSidecarSums) {
  const std::string dir = scratch_dir("dist_registry");
  const std::string study = "ablation_window_size";
  const std::string cache_dir = dir + "/cache";

  // Two partitioned workers, each leaving a sidecar with its registry
  // delta (counters its shards incremented, baseline-subtracted so
  // in-process test runs don't bleed into each other).
  std::map<std::string, std::uint64_t> expected;
  for (unsigned idx : {0u, 1u}) {
    bench::StudyCommonOptions common;
    common.threads = 2;
    common.cache_dir = cache_dir;
    bench::DistOptions dist;
    dist.index = idx;
    dist.total = 2;
    dist.steal = false;
    dist.worker_id = "rw" + std::to_string(idx);
    dist.heartbeat_seconds = 0;
    ASSERT_EQ(bench::run_study_workers(common, dist, {study}, kWindowArgs),
              0);
    const std::string sidecar =
        slurp(cache_dir + "/workers/rw" + std::to_string(idx) + ".json");
    for (const auto& [name, value] :
         parse_counter_object(sidecar, "\"registry\":")) {
      expected[name] += value;
    }
  }
  ASSERT_FALSE(expected.empty());
  EXPECT_GT(expected["net.aggregate.probe_slots"], 0u);

  // The merge manifest's merged_registry must equal the sidecar sums
  // exactly -- the cluster-wide totals are a pure fold of the deltas.
  bench::StudyCommonOptions merge_common;
  merge_common.cache_dir = cache_dir;
  merge_common.csv = dir + "/merged.csv";
  merge_common.obs.manifest_out = dir + "/manifest.json";
  ASSERT_EQ(bench::run_study_merge(merge_common, bench::DistOptions{},
                                   {study}, kWindowArgs),
            0);
  const std::map<std::string, std::uint64_t> merged = parse_counter_object(
      slurp(dir + "/manifest.json"), "\"merged_registry\":");
  EXPECT_EQ(merged, expected);
}

TEST(DistExec, ConcurrentWorkersMergeByteIdentical) {
  const std::string dir = scratch_dir("dist_concurrent");
  const std::string study = "ablation_window_size";
  const std::string reference = single_process_csv(study, dir, kWindowArgs);
  const std::string cache_dir = dir + "/cache";

  // Two workers of a 2-partition fleet running in the same wall-clock
  // window (exercises lease contention + segment interleaving under
  // TSan). Stealing on, so either may finish the other's partition.
  auto worker = [&](unsigned idx) {
    bench::StudyCommonOptions common;
    common.threads = 2;
    common.cache_dir = cache_dir;
    bench::DistOptions dist;
    dist.index = idx;
    dist.total = 2;
    dist.worker_id = "cw" + std::to_string(idx);
    dist.stale_seconds = 60.0;
    dist.heartbeat_seconds = 0.05;
    EXPECT_EQ(bench::run_study_workers(common, dist, {study}, kWindowArgs),
              0);
  };
  std::thread t0(worker, 0u);
  std::thread t1(worker, 1u);
  t0.join();
  t1.join();

  bench::StudyCommonOptions merge_common;
  merge_common.cache_dir = cache_dir;
  merge_common.csv = dir + "/merged.csv";
  EXPECT_EQ(bench::run_study_merge(merge_common, bench::DistOptions{},
                                   {study}, kWindowArgs),
            0);
  EXPECT_EQ(slurp(dir + "/merged.csv"), reference);
}

}  // namespace
