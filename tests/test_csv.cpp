#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "util/contract.hpp"

namespace {

using tcw::csv_escape;
using tcw::Table;

TEST(CsvEscape, PlainFieldUntouched) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape("1.25"), "1.25");
}

TEST(CsvEscape, QuotesFieldsWithCommas) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, DoublesEmbeddedQuotes) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, QuotesNewlines) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST(Table, HeaderOnlyCsv) {
  Table t({"k", "loss"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "k,loss\n");
}

TEST(Table, RowsRenderInOrder) {
  Table t({"k", "loss"});
  t.add_row({"1", "0.5"});
  t.add_row({"2", "0.25"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "k,loss\n1,0.5\n2,0.25\n");
}

TEST(Table, NumericRowFormatting) {
  Table t({"a", "b"});
  t.add_numeric_row({1.0, 0.125}, 3);
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1.000,0.125\n");
}

TEST(Table, WrongWidthRowRejected) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), tcw::ContractViolation);
}

TEST(Table, EmptyHeaderRejected) {
  EXPECT_THROW(Table t({}), tcw::ContractViolation);
}

TEST(Table, PrettyAlignsColumns) {
  Table t({"k", "loss"});
  t.add_row({"100", "0.5"});
  std::ostringstream os;
  t.write_pretty(os);
  const std::string out = os.str();
  // Header, rule, one data row.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_NE(out.find("100"), std::string::npos);
}

TEST(Table, SaveCsvRoundTrip) {
  Table t({"x"});
  t.add_row({"42"});
  const std::string path = ::testing::TempDir() + "/tcw_test_table.csv";
  ASSERT_TRUE(t.save_csv(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), "x\n42\n");
}

TEST(Table, AccessorsReflectContent) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.columns(), 3u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.data()[0][2], "3");
}

}  // namespace
