// The packet flight recorder: pure-hash sampling determinism (zero RNG
// draws, reproducible across segments, recorders, and thread counts),
// bounded-ring event retention, and JSON export -- plus the shared
// BoundedRing tiny-capacity wraparound regression that also pins
// sim::TraceLog (both capture surfaces ride the same ring).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/ring.hpp"
#include "sim/trace.hpp"

namespace tcw {
namespace {

using obs::BoundedRing;
using obs::FlightEvent;
using obs::FlightEventKind;
using obs::FlightRecorder;

// ------------------------------------------------------- BoundedRing

TEST(BoundedRing, CapacityOneKeepsOnlyLatest) {
  BoundedRing<int> ring(1);
  EXPECT_EQ(ring.capacity(), 1u);
  EXPECT_EQ(ring.size(), 0u);
  for (int i = 1; i <= 5; ++i) ring.push(i);
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.total(), 5u);
  EXPECT_EQ(ring.dropped(), 4u);
  EXPECT_EQ(ring.snapshot(), (std::vector<int>{5}));
}

TEST(BoundedRing, CapacityZeroClampsToOne) {
  // A misconfigured capture degrades to "keep the last value", not UB.
  BoundedRing<int> ring(0);
  EXPECT_EQ(ring.capacity(), 1u);
  ring.push(7);
  ring.push(8);
  EXPECT_EQ(ring.snapshot(), (std::vector<int>{8}));
  EXPECT_EQ(ring.dropped(), 1u);
}

TEST(BoundedRing, TinyCapacityWraparoundOldestFirst) {
  // The regression this ring was extracted for: at capacities 2 and 3
  // the snapshot must stay oldest-first through every wrap phase.
  for (std::size_t capacity : {2u, 3u}) {
    BoundedRing<int> ring(capacity);
    std::vector<int> expected;
    for (int i = 0; i < 10; ++i) {
      ring.push(i);
      expected.push_back(i);
      if (expected.size() > capacity) {
        expected.erase(expected.begin());
      }
      EXPECT_EQ(ring.snapshot(), expected)
          << "capacity " << capacity << " after push " << i;
      EXPECT_EQ(ring.size(), expected.size());
      EXPECT_EQ(ring.total(), static_cast<std::uint64_t>(i + 1));
    }
    EXPECT_EQ(ring.dropped(), 10u - capacity);
  }
}

TEST(BoundedRing, ClearResetsButKeepsCapacity) {
  BoundedRing<int> ring(2);
  ring.push(1);
  ring.push(2);
  ring.push(3);
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.total(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  ring.push(9);
  EXPECT_EQ(ring.snapshot(), (std::vector<int>{9}));
}

TEST(TraceLog, TinyCapacityKeepsLatestRecords) {
  // sim::TraceLog rides the same BoundedRing: a capacity-2 log holding
  // the last two of five records, oldest first, with the drops counted.
  sim::TraceLog log(2);
  for (int i = 0; i < 5; ++i) {
    log.record(static_cast<double>(i), sim::TraceKind::ProbeIdle,
               static_cast<double>(i), static_cast<double>(i) + 1.0);
  }
  const std::vector<sim::TraceRecord> records = log.snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_DOUBLE_EQ(records[0].time, 3.0);
  EXPECT_DOUBLE_EQ(records[1].time, 4.0);
  EXPECT_EQ(log.dropped(), 3u);
  EXPECT_EQ(log.count(sim::TraceKind::ProbeIdle), 5u);
  log.clear();
  EXPECT_EQ(log.snapshot().size(), 0u);
  EXPECT_EQ(log.count(sim::TraceKind::ProbeIdle), 0u);
}

// ---------------------------------------------------- FlightRecorder

TEST(FlightRecorder, SampleRateOneRecordsEverything) {
  FlightRecorder rec({12345u, 1.0, 64});
  FlightRecorder::Segment* seg = rec.segment("run");
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(seg->sampled(static_cast<double>(i) + 0.25, i % 3));
  }
}

TEST(FlightRecorder, SampleRateZeroRecordsNothing) {
  FlightRecorder rec({12345u, 0.0, 64});
  FlightRecorder::Segment* seg = rec.segment("run");
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(seg->sampled(static_cast<double>(i) + 0.25, i % 3));
  }
}

TEST(FlightRecorder, SamplingIsDeterministicAcrossSegmentsAndRecorders) {
  // The decision is a pure hash of (arrival, channel) against the seed
  // plane: two segments of one recorder, and segments of a second
  // recorder with the same base seed, must agree on every packet.
  FlightRecorder rec_a({987654321u, 0.5, 64});
  FlightRecorder rec_b({987654321u, 0.5, 64});
  FlightRecorder::Segment* a1 = rec_a.segment("one");
  FlightRecorder::Segment* a2 = rec_a.segment("two");
  FlightRecorder::Segment* b = rec_b.segment("other");
  std::size_t sampled = 0;
  for (int i = 0; i < 1000; ++i) {
    const double arrival = i * 1.618;
    const std::uint32_t channel = i % 4;
    const bool hit = a1->sampled(arrival, channel);
    EXPECT_EQ(a2->sampled(arrival, channel), hit);
    EXPECT_EQ(b->sampled(arrival, channel), hit);
    if (hit) ++sampled;
  }
  // Rate 0.5 over 1000 hash draws: comfortably inside [300, 700].
  EXPECT_GT(sampled, 300u);
  EXPECT_LT(sampled, 700u);
}

TEST(FlightRecorder, DifferentSeedsSampleDifferently) {
  FlightRecorder rec_a({1u, 0.5, 64});
  FlightRecorder rec_b({2u, 0.5, 64});
  FlightRecorder::Segment* a = rec_a.segment("x");
  FlightRecorder::Segment* b = rec_b.segment("x");
  std::size_t differs = 0;
  for (int i = 0; i < 1000; ++i) {
    const double arrival = i * 2.71828;
    if (a->sampled(arrival, 0) != b->sampled(arrival, 0)) ++differs;
  }
  EXPECT_GT(differs, 100u);
}

TEST(FlightRecorder, RecordCountsKindsAndDropsOldest) {
  FlightRecorder rec({7u, 1.0, 2});
  FlightRecorder::Segment* seg = rec.segment("run");
  seg->record(1.0, FlightEventKind::kArrival, 1.0, 10.0, 0);
  seg->record(2.0, FlightEventKind::kAdmit, 1.0, 9.0, 0);
  seg->record(3.0, FlightEventKind::kCollision, 1.0, 8.0, 0);
  seg->record(4.0, FlightEventKind::kSuccess, 1.0, 7.0, 0);
  EXPECT_EQ(seg->count(FlightEventKind::kArrival), 1u);
  EXPECT_EQ(seg->count(FlightEventKind::kSuccess), 1u);
  EXPECT_EQ(seg->count(FlightEventKind::kExpiry), 0u);
  EXPECT_EQ(seg->total(), 4u);
  EXPECT_EQ(seg->dropped(), 2u);
  const std::vector<FlightEvent> events = seg->events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, FlightEventKind::kCollision);
  EXPECT_EQ(events[1].kind, FlightEventKind::kSuccess);
  EXPECT_DOUBLE_EQ(events[1].laxity, 7.0);
}

TEST(FlightRecorder, SegmentLookupIsStableAndConcurrentCreationSafe) {
  FlightRecorder rec({3u, 1.0, 16});
  FlightRecorder::Segment* first = rec.segment("tag");
  EXPECT_EQ(rec.segment("tag"), first);
  // Concurrent creation of distinct tags must not race (mutex-guarded);
  // run under TSan in tier-1.
  std::vector<std::thread> threads;
  std::vector<FlightRecorder::Segment*> got(8, nullptr);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&rec, &got, t] {
      got[static_cast<std::size_t>(t)] =
          rec.segment("thread" + std::to_string(t % 4));
      got[static_cast<std::size_t>(t)]->sampled(1.0, 0);
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < 8; ++t) {
    EXPECT_EQ(got[static_cast<std::size_t>(t)],
              rec.segment("thread" + std::to_string(t % 4)));
  }
}

TEST(FlightRecorder, JsonExportIsTagSortedAndWellFormed) {
  FlightRecorder rec({11u, 1.0, 8});
  rec.segment("zeta")->record(1.0, FlightEventKind::kArrival, 1.0, 5.0, 0);
  rec.segment("alpha")->record(2.0, FlightEventKind::kExpiry, 1.0, 0.0, 1);
  const std::string json = rec.to_json();
  EXPECT_NE(json.find("\"format\":\"tcw-flight-v1\""), std::string::npos);
  const std::size_t alpha = json.find("\"alpha\"");
  const std::size_t zeta = json.find("\"zeta\"");
  ASSERT_NE(alpha, std::string::npos);
  ASSERT_NE(zeta, std::string::npos);
  EXPECT_LT(alpha, zeta);  // tag-sorted, deterministic export
  EXPECT_NE(json.find("\"expiry\""), std::string::npos);
}

}  // namespace
}  // namespace tcw
