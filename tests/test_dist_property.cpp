// Algebraic property tests of the lattice-distribution toolkit over
// randomly generated pmfs.
#include <gtest/gtest.h>

#include <vector>

#include "dist/families.hpp"
#include "dist/pmf.hpp"
#include "sim/rng.hpp"
#include "sim/sampling.hpp"

namespace {

using tcw::dist::Pmf;

Pmf random_pmf(tcw::sim::Rng& rng, std::size_t max_support) {
  const std::size_t n = 1 + tcw::sim::uniform_index(rng, max_support);
  std::vector<double> p(n);
  double total = 0.0;
  for (auto& v : p) {
    v = tcw::sim::uniform01(rng) < 0.3 ? 0.0 : tcw::sim::uniform01(rng);
    total += v;
  }
  if (total == 0.0) p[0] = total = 1.0;
  for (auto& v : p) v /= total;
  return Pmf(std::move(p));
}

class DistPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  tcw::sim::Rng rng_{4000 + static_cast<unsigned>(GetParam())};
};

TEST_P(DistPropertyTest, ConvolutionIsAssociative) {
  const Pmf a = random_pmf(rng_, 12);
  const Pmf b = random_pmf(rng_, 12);
  const Pmf c = random_pmf(rng_, 12);
  const Pmf left = Pmf::convolve(Pmf::convolve(a, b, 64), c, 64);
  const Pmf right = Pmf::convolve(a, Pmf::convolve(b, c, 64), 64);
  ASSERT_EQ(left.size(), right.size());
  for (std::size_t k = 0; k < left.size(); ++k) {
    EXPECT_NEAR(left.at(k), right.at(k), 1e-12) << k;
  }
}

TEST_P(DistPropertyTest, ConvolutionPreservesTotalMass) {
  const Pmf a = random_pmf(rng_, 16);
  const Pmf b = random_pmf(rng_, 16);
  const Pmf ab = Pmf::convolve(a, b, 64);
  EXPECT_NEAR(ab.total_mass(), 1.0, 1e-12);
}

TEST_P(DistPropertyTest, MeanAndVarianceAreAdditiveUnderConvolution) {
  const Pmf a = random_pmf(rng_, 16);
  const Pmf b = random_pmf(rng_, 16);
  const Pmf ab = Pmf::convolve(a, b, 128);
  EXPECT_NEAR(ab.mean(), a.mean() + b.mean(), 1e-10);
  EXPECT_NEAR(ab.variance(), a.variance() + b.variance(), 1e-10);
}

TEST_P(DistPropertyTest, EquilibriumSumsToOneAndHasKnownMean) {
  Pmf a = random_pmf(rng_, 16);
  if (a.mean() == 0.0) a = tcw::dist::uniform_int(1, 4);
  const Pmf eq = a.equilibrium();
  EXPECT_NEAR(eq.total_mass(), 1.0, 1e-10);
  // E[equilibrium] = E[X(X-1)] / (2 E[X]) on the integer lattice.
  const double m1 = a.mean();
  const double m2 = a.variance() + m1 * m1;
  EXPECT_NEAR(eq.mean(), (m2 - m1) / (2.0 * m1), 1e-9);
}

TEST_P(DistPropertyTest, ShiftMovesMeanExactly) {
  const Pmf a = random_pmf(rng_, 16);
  const std::size_t c = tcw::sim::uniform_index(rng_, 10);
  const Pmf shifted = a.shifted(c);
  EXPECT_NEAR(shifted.mean(), a.mean() + static_cast<double>(c), 1e-12);
  EXPECT_NEAR(shifted.variance(), a.variance(), 1e-10);
}

TEST_P(DistPropertyTest, QuantileIsGeneralizedInverseOfCdf) {
  const Pmf a = random_pmf(rng_, 20);
  for (const double q : {0.1, 0.5, 0.9}) {
    const std::size_t k = a.quantile(q);
    EXPECT_GE(a.cdf(k), q - 1e-12);
    if (k > 0) EXPECT_LT(a.cdf(k - 1), q);
  }
}

TEST_P(DistPropertyTest, MixtureMeanIsWeightedAverage) {
  const Pmf a = random_pmf(rng_, 12);
  const Pmf b = random_pmf(rng_, 12);
  const double wa = 0.1 + tcw::sim::uniform01(rng_);
  const double wb = 0.1 + tcw::sim::uniform01(rng_);
  const Pmf mix = Pmf::mixture({a, b}, {wa, wb});
  const double expect =
      (wa * a.mean() + wb * b.mean()) / (wa + wb);
  EXPECT_NEAR(mix.mean(), expect, 1e-10);
  EXPECT_NEAR(mix.total_mass(), 1.0, 1e-12);
}

TEST_P(DistPropertyTest, ConvolvePowerMatchesMoments) {
  Pmf a = random_pmf(rng_, 8);
  const std::size_t n = 1 + tcw::sim::uniform_index(rng_, 6);
  const Pmf an = Pmf::convolve_power(a, n, 256);
  EXPECT_NEAR(an.mean(), static_cast<double>(n) * a.mean(), 1e-9);
  EXPECT_NEAR(an.variance(), static_cast<double>(n) * a.variance(), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, DistPropertyTest,
                         ::testing::Range(0, 12));

}  // namespace
