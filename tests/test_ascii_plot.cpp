#include "util/ascii_plot.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/contract.hpp"

namespace {

using tcw::PlotOptions;
using tcw::PlotSeries;
using tcw::render_plot;

TEST(AsciiPlot, RendersAllSymbolsAndLegend) {
  const std::vector<double> x{0.0, 1.0, 2.0, 3.0};
  const std::vector<PlotSeries> series{
      {"up", 'u', {0.0, 1.0, 2.0, 3.0}},
      {"down", 'd', {3.0, 2.0, 1.0, 0.0}},
  };
  const std::string out = render_plot(x, series);
  EXPECT_NE(out.find('u'), std::string::npos);
  EXPECT_NE(out.find('d'), std::string::npos);
  EXPECT_NE(out.find("u = up"), std::string::npos);
  EXPECT_NE(out.find("d = down"), std::string::npos);
}

TEST(AsciiPlot, HasRequestedDimensions) {
  const std::vector<double> x{0.0, 10.0};
  const std::vector<PlotSeries> series{{"s", '*', {1.0, 2.0}}};
  PlotOptions opts;
  opts.width = 20;
  opts.height = 6;
  const std::string out = render_plot(x, series, opts);
  // height rows + axis + x labels + legend.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'),
            static_cast<std::ptrdiff_t>(opts.height) + 3);
}

TEST(AsciiPlot, MonotoneSeriesDescendsOnScreen) {
  // Higher values are drawn on higher rows (smaller row index).
  const std::vector<double> x{0.0, 1.0};
  const std::vector<PlotSeries> series{{"s", '*', {0.0, 1.0}}};
  const std::string out = render_plot(x, series);
  const auto first_star = out.find('*');
  const auto last_star = out.rfind('*');
  // The larger value (x=1) must appear on an earlier line than the smaller.
  const auto line_of = [&](std::size_t pos) {
    return std::count(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(pos), '\n');
  };
  EXPECT_LT(line_of(first_star), line_of(last_star));
}

TEST(AsciiPlot, LogScaleClampsFloor) {
  const std::vector<double> x{0.0, 1.0, 2.0};
  PlotOptions opts;
  opts.log_y = true;
  opts.log_floor = 1e-4;
  const std::vector<PlotSeries> series{{"s", '*', {0.5, 1e-9, 0.05}}};
  EXPECT_NO_THROW(render_plot(x, series, opts));
}

TEST(AsciiPlot, ConstantSeriesStillRenders) {
  const std::vector<double> x{0.0, 1.0};
  const std::vector<PlotSeries> series{{"s", '*', {0.5, 0.5}}};
  EXPECT_NO_THROW(render_plot(x, series));
}

TEST(AsciiPlot, NanPointsAreSkipped) {
  const std::vector<double> x{0.0, 1.0, 2.0};
  const std::vector<PlotSeries> series{
      {"s", '*', {1.0, std::nan(""), 2.0}}};
  const std::string out = render_plot(x, series);
  EXPECT_EQ(std::count(out.begin(), out.end(), '*'), 3);  // 2 pts + legend
}

TEST(AsciiPlot, InvalidInputsRejected) {
  const std::vector<double> x{0.0, 1.0};
  EXPECT_THROW(render_plot({}, {{"s", '*', {}}}), tcw::ContractViolation);
  EXPECT_THROW(render_plot(x, {}), tcw::ContractViolation);
  EXPECT_THROW(render_plot(x, {{"s", '*', {1.0}}}),
               tcw::ContractViolation);  // length mismatch
  PlotOptions tiny;
  tiny.width = 2;
  EXPECT_THROW(render_plot(x, {{"s", '*', {1.0, 2.0}}}, tiny),
               tcw::ContractViolation);
}

}  // namespace
