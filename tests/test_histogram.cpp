#include "sim/histogram.hpp"

#include <gtest/gtest.h>

#include "util/contract.hpp"

namespace {

using tcw::sim::Histogram;

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);
  h.add(0.5);
  h.add(9.99);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, UnderflowOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(10.0);   // hi edge is exclusive
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, WeightsAccumulate) {
  Histogram h(0.0, 1.0, 1);
  h.add(0.5, 7);
  EXPECT_EQ(h.count(0), 7u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(Histogram, BinCenters) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
  EXPECT_THROW(h.bin_center(5), tcw::ContractViolation);
}

TEST(Histogram, CdfIsMonotoneAndEndsAtCoveredMass) {
  Histogram h(0.0, 4.0, 4);
  for (const double x : {0.5, 1.5, 1.7, 3.5}) h.add(x);
  h.add(10.0);  // overflow
  const auto cdf = h.cdf();
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i], cdf[i - 1]);
  }
  EXPECT_DOUBLE_EQ(cdf.back(), 4.0 / 5.0);  // overflow not in last bin's cdf
}

TEST(Histogram, FractionAtMost) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_DOUBLE_EQ(h.fraction_at_most(5.0), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction_at_most(10.0), 1.0);
  EXPECT_DOUBLE_EQ(h.fraction_at_most(-0.1), 0.0);
}

TEST(Histogram, FractionAtMostInterpolatesPartialBin) {
  // Regression: the truncating implementation dropped the partial bin
  // containing x entirely, biasing "fraction of waits <= K" readouts low
  // by up to one full bin of mass.
  Histogram h(0.0, 10.0, 5);  // bin width 2
  h.add(1.0, 4);              // bin 0: [0, 2)
  h.add(3.0, 2);              // bin 1: [2, 4)
  h.add(9.0, 4);              // bin 4: [8, 10)
  // Hand-computed CDF with uniform-within-bin mass:
  //   x = 3.5 -> bin 0 in full (4) + 3/4 of bin 1 (1.5) = 5.5 of 10.
  // The old code returned 4/10 here, truncating bin 1's contribution.
  EXPECT_DOUBLE_EQ(h.fraction_at_most(3.5), 0.55);
  //   x = 3.0 -> 4 + 0.5 * 2 = 5 of 10.
  EXPECT_DOUBLE_EQ(h.fraction_at_most(3.0), 0.5);
  //   x = 9.0 -> 4 + 2 + 0.5 * 4 = 8 of 10.
  EXPECT_DOUBLE_EQ(h.fraction_at_most(9.0), 0.8);
  // Exact bin edges carry no partial mass, so they agree with the old
  // full-bin prefix sums.
  EXPECT_DOUBLE_EQ(h.fraction_at_most(2.0), 0.4);
  EXPECT_DOUBLE_EQ(h.fraction_at_most(4.0), 0.6);
  EXPECT_DOUBLE_EQ(h.fraction_at_most(8.0), 0.6);
}

TEST(Histogram, FractionAtMostCountsUnderflowAndSaturatesAtHi) {
  Histogram h(0.0, 4.0, 4);
  h.add(-1.0);  // underflow
  h.add(0.5);
  h.add(9.0);   // overflow
  EXPECT_DOUBLE_EQ(h.fraction_at_most(0.0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(h.fraction_at_most(1.0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(h.fraction_at_most(4.0), 1.0);
  EXPECT_DOUBLE_EQ(h.fraction_at_most(100.0), 1.0);
}

TEST(Histogram, QuantileInverseOfCdf) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 1000; ++i) h.add(i % 100 + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
}

TEST(Histogram, ApproximateMean) {
  Histogram h(0.0, 10.0, 10);
  h.add(2.2);  // center 2.5
  h.add(7.9);  // center 7.5
  EXPECT_DOUBLE_EQ(h.approximate_mean(), 5.0);
}

TEST(Histogram, EmptyHistogramDefaults) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.fraction_at_most(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.approximate_mean(), 0.0);
}

TEST(Histogram, InvalidConstructionRejected) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), tcw::ContractViolation);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), tcw::ContractViolation);
}

TEST(Histogram, ToStringMentionsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string s = h.to_string(10);
  EXPECT_NE(s.find('#'), std::string::npos);
  EXPECT_NE(s.find('2'), std::string::npos);
}

}  // namespace
