// Validates the renewal analysis of the windowing process against closed
// forms and an independent Monte-Carlo implementation of the splitting
// dynamics.
#include "analysis/splitting.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/rng.hpp"
#include "sim/sampling.hpp"
#include "sim/stats.hpp"
#include "util/contract.hpp"

namespace {

namespace analysis = tcw::analysis;

// Independent straight-line simulation of one collision-resolution run:
// window [0,1) known to hold the given sorted arrival positions (n >= 2),
// probing older halves first. Returns (probes incl. success, resolved end).
struct McResult {
  int probes = 0;
  double resolved_end = 0.0;
};

McResult mc_split(const std::vector<double>& pos) {
  std::vector<std::pair<double, double>> stack;
  double lo = 0.0;
  double hi = 1.0;
  // The caller guarantees a collision happened on [0,1): start by splitting.
  int probes = 0;
  double cur_lo = lo;
  double cur_hi = (lo + hi) / 2.0;
  stack.emplace_back(cur_hi, hi);
  while (true) {
    ++probes;
    const auto count = static_cast<std::size_t>(
        std::count_if(pos.begin(), pos.end(), [&](double x) {
          return x >= cur_lo && x < cur_hi;
        }));
    if (count == 1) return {probes, cur_hi};
    if (count == 0) {
      const auto sib = stack.back();
      stack.pop_back();
      const double mid = (sib.first + sib.second) / 2.0;
      stack.emplace_back(mid, sib.second);
      cur_lo = sib.first;
      cur_hi = mid;
    } else {
      const double mid = (cur_lo + cur_hi) / 2.0;
      stack.emplace_back(mid, cur_hi);
      cur_hi = mid;
    }
  }
}

TEST(SplitProbes, ClosedFormSmallN) {
  const auto r = analysis::expected_split_probes(8);
  EXPECT_DOUBLE_EQ(r[0], 0.0);
  EXPECT_DOUBLE_EQ(r[1], 0.0);
  EXPECT_NEAR(r[2], 2.0, 1e-12);         // hand-derived
  EXPECT_NEAR(r[3], 7.0 / 3.0, 1e-12);   // hand-derived
  EXPECT_GT(r[4], r[3]);
  EXPECT_GT(r[8], r[4]);
}

TEST(SplitProbes, GrowsLogarithmically) {
  const auto r = analysis::expected_split_probes(64);
  // Splitting isolates one of n by binary search-like halving; the probe
  // count grows slowly (roughly log2 n plus a constant).
  EXPECT_LT(r[64], r[2] + 2.0 * std::log2(64.0));
  for (std::size_t n = 3; n <= 64; ++n) EXPECT_GE(r[n], r[n - 1]);
}

class SplitProbesMcTest : public ::testing::TestWithParam<int> {};

TEST_P(SplitProbesMcTest, RecursionMatchesMonteCarlo) {
  const int n = GetParam();
  const auto r = analysis::expected_split_probes(static_cast<std::size_t>(n));
  tcw::sim::Rng rng(1000 + static_cast<unsigned>(n));
  tcw::sim::RunningStats probes;
  std::vector<double> pos(static_cast<std::size_t>(n));
  for (int rep = 0; rep < 40000; ++rep) {
    for (auto& x : pos) x = tcw::sim::uniform01(rng);
    std::sort(pos.begin(), pos.end());
    probes.add(static_cast<double>(mc_split(pos).probes));
  }
  EXPECT_NEAR(probes.mean(), r[static_cast<std::size_t>(n)],
              4.0 * probes.ci95_halfwidth() + 0.01);
}

INSTANTIATE_TEST_SUITE_P(SmallCounts, SplitProbesMcTest,
                         ::testing::Values(2, 3, 4, 5, 7, 10));

TEST(SplitProbeDistribution, MatchesMeanAndNormalizes) {
  for (const std::size_t n : {2u, 3u, 5u, 8u}) {
    const auto q = analysis::split_probe_distribution(n, 512);
    EXPECT_NEAR(q.total_mass(), 1.0, 1e-9) << n;
    const auto r = analysis::expected_split_probes(n);
    EXPECT_NEAR(q.mean(), r[n], 1e-6) << n;
    EXPECT_DOUBLE_EQ(q.at(0), 0.0) << "at least one probe";
  }
}

TEST(SplitProbeDistribution, N2IsGeometricHalf) {
  const auto q = analysis::split_probe_distribution(2, 64);
  for (std::size_t s = 1; s <= 10; ++s) {
    EXPECT_NEAR(q.at(s), std::pow(0.5, s), 1e-12) << s;
  }
}

TEST(ProcessSlots, EmptyWindowCostsOneProbe) {
  EXPECT_NEAR(analysis::expected_process_slots(0.0), 1.0, 1e-12);
}

TEST(ProcessSlots, IncreasesWithLoad) {
  double prev = analysis::expected_process_slots(0.1);
  for (double nu = 0.5; nu <= 4.0; nu += 0.5) {
    const double cur = analysis::expected_process_slots(nu);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(ProcessMessages, IsOneMinusExpMinusNu) {
  EXPECT_NEAR(analysis::expected_process_messages(0.7), 1.0 - std::exp(-0.7),
              1e-12);
  EXPECT_DOUBLE_EQ(analysis::expected_process_messages(0.0), 0.0);
}

TEST(SlotsPerMessage, DivergesAtExtremes) {
  const double nu_star = analysis::optimal_window_load();
  const double at_star = analysis::slots_per_message(nu_star);
  EXPECT_GT(analysis::slots_per_message(0.05), at_star);
  EXPECT_GT(analysis::slots_per_message(6.0), at_star);
}

TEST(OptimalWindowLoad, MatchesLiteratureBallpark) {
  // The optimal expected arrivals per window for binary splitting with
  // immediate re-split sits near 1.1 (cf. Gallager's 0.487-throughput
  // FCFS algorithm whose optimum window holds ~1.26 arrivals under a
  // slightly different continuation rule).
  const double nu = analysis::optimal_window_load();
  EXPECT_GT(nu, 0.8);
  EXPECT_LT(nu, 1.6);
}

TEST(OptimalWindowLoad, IsAStationaryPoint) {
  const double nu = analysis::optimal_window_load();
  const double f0 = analysis::slots_per_message(nu);
  EXPECT_LE(f0, analysis::slots_per_message(nu * 1.02));
  EXPECT_LE(f0, analysis::slots_per_message(nu * 0.98));
}

TEST(ConditionalSchedulingMean, ZeroAtZeroLoad) {
  EXPECT_DOUBLE_EQ(analysis::conditional_scheduling_mean(0.0), 0.0);
}

TEST(ConditionalSchedulingMean, BelowAmortizedOverhead) {
  // Amortized slots/message also pays for empty windows, so it dominates
  // scheduling-only conditional mean + the success probe.
  for (const double nu : {0.5, 1.0, 2.0}) {
    EXPECT_LT(analysis::conditional_scheduling_mean(nu),
              analysis::slots_per_message(nu)) << nu;
  }
}

TEST(SchedulingDistribution, NormalizedWithMatchingMean) {
  for (const double nu : {0.3, 1.0, 2.5}) {
    const auto d = analysis::scheduling_distribution(nu);
    EXPECT_NEAR(d.total_mass(), 1.0, 1e-9) << nu;
    EXPECT_NEAR(d.mean(), analysis::conditional_scheduling_mean(nu), 1e-6)
        << nu;
  }
}

TEST(SchedulingDistribution, LightLoadConcentratesAtZero) {
  const auto d = analysis::scheduling_distribution(0.01);
  EXPECT_GT(d.at(0), 0.99);
}

TEST(ResolvedFraction, BoundsAndLimits) {
  const auto f = analysis::resolved_fraction_by_count(32);
  EXPECT_DOUBLE_EQ(f[0], 1.0);
  EXPECT_DOUBLE_EQ(f[1], 1.0);
  EXPECT_NEAR(f[2], 0.5, 1e-12);  // hand-derived in splitting.cpp comments
  for (std::size_t n = 2; n <= 32; ++n) {
    EXPECT_GT(f[n], 0.0);
    EXPECT_LT(f[n], 1.0);
    if (n > 2) EXPECT_LT(f[n], f[n - 1]);  // more arrivals resolve less
  }
}

class ResolvedFractionMcTest : public ::testing::TestWithParam<int> {};

TEST_P(ResolvedFractionMcTest, RecursionMatchesMonteCarlo) {
  const int n = GetParam();
  const auto f = analysis::resolved_fraction_by_count(
      static_cast<std::size_t>(n));
  tcw::sim::Rng rng(500 + static_cast<unsigned>(n));
  tcw::sim::RunningStats resolved;
  std::vector<double> pos(static_cast<std::size_t>(n));
  for (int rep = 0; rep < 40000; ++rep) {
    for (auto& x : pos) x = tcw::sim::uniform01(rng);
    std::sort(pos.begin(), pos.end());
    resolved.add(mc_split(pos).resolved_end);
  }
  EXPECT_NEAR(resolved.mean(), f[static_cast<std::size_t>(n)],
              4.0 * resolved.ci95_halfwidth() + 0.005);
}

INSTANTIATE_TEST_SUITE_P(SmallCounts, ResolvedFractionMcTest,
                         ::testing::Values(2, 3, 5, 8));

TEST(ExpectedResolvedFraction, OneAtZeroLoadAndDecreasing) {
  EXPECT_DOUBLE_EQ(analysis::expected_resolved_fraction(0.0), 1.0);
  double prev = 1.0;
  for (double nu = 0.5; nu <= 4.0; nu += 0.5) {
    const double cur = analysis::expected_resolved_fraction(nu);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

}  // namespace
