#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace {

using tcw::sim::Pcg32;
using tcw::sim::SplitMix64;
using tcw::sim::Xoshiro256ss;

TEST(SplitMix64, KnownVector) {
  // Reference values for seed 1234567 from the public-domain reference
  // implementation.
  SplitMix64 g(1234567);
  EXPECT_EQ(g(), 6457827717110365317ULL);
  EXPECT_EQ(g(), 3203168211198807973ULL);
  EXPECT_EQ(g(), 9817491932198370423ULL);
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a(), b());
}

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256ss a(42);
  Xoshiro256ss b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, SeedsProduceDistinctStreams) {
  Xoshiro256ss a(1);
  Xoshiro256ss b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro, JumpDecorrelatesStream) {
  Xoshiro256ss a(7);
  Xoshiro256ss b(7);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro, BitsLookUniformByByteHistogram) {
  Xoshiro256ss g(123);
  std::vector<int> counts(256, 0);
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t v = g();
    for (int b = 0; b < 8; ++b) {
      ++counts[(v >> (8 * b)) & 0xFF];
    }
  }
  // Chi-square against uniform with 255 dof; 3-sigma-ish acceptance.
  const double expected = kDraws * 8.0 / 256.0;
  double chi2 = 0.0;
  for (const int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 255 + 5 * std::sqrt(2 * 255.0));
  EXPECT_GT(chi2, 255 - 5 * std::sqrt(2 * 255.0));
}

TEST(Pcg32, DeterministicForSeed) {
  Pcg32 a(99, 5);
  Pcg32 b(99, 5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a(), b());
}

TEST(Pcg32, StreamsAreIndependent) {
  Pcg32 a(99, 1);
  Pcg32 b(99, 2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(DeriveStreamSeed, DeterministicAndMatchesMixer) {
  using tcw::sim::derive_stream_seed;
  using tcw::sim::splitmix64_mix;
  EXPECT_EQ(derive_stream_seed(42, 3, 7), derive_stream_seed(42, 3, 7));
  // Definition: three chained SplitMix64 finalize steps.
  const std::uint64_t expected =
      splitmix64_mix(splitmix64_mix(splitmix64_mix(42) ^ 3) ^ 7);
  EXPECT_EQ(derive_stream_seed(42, 3, 7), expected);
}

TEST(DeriveStreamSeed, SplitMixMixerMatchesGenerator) {
  // splitmix64_mix(s) must equal one step of the stateful generator
  // seeded at s, so substream seeds use the exact published mixing.
  tcw::sim::SplitMix64 g(1234567);
  EXPECT_EQ(tcw::sim::splitmix64_mix(1234567), g());
}

TEST(DeriveStreamSeed, PairwiseDistinctAcrossRepresentativeSweep) {
  // A production-scale sweep: 64 K-grid points x 32 replications, for
  // several base seeds including the additive scheme's worst cases.
  using tcw::sim::derive_stream_seed;
  for (const std::uint64_t base : {0ULL, 1ULL, 20261983ULL,
                                   0xFFFFFFFFFFFFFFFFULL}) {
    std::set<std::uint64_t> seen;
    for (std::uint64_t ki = 0; ki < 64; ++ki) {
      for (std::uint64_t rep = 0; rep < 32; ++rep) {
        EXPECT_TRUE(seen.insert(derive_stream_seed(base, ki, rep)).second)
            << "collision at base=" << base << " ki=" << ki
            << " rep=" << rep;
      }
    }
  }
}

TEST(DeriveStreamSeed, CoordinatesAreNotInterchangeable) {
  // The additive scheme collided whenever 1000003*r + 17*k matched;
  // hash derivation must separate transposed coordinates too.
  using tcw::sim::derive_stream_seed;
  EXPECT_NE(derive_stream_seed(9, 2, 5), derive_stream_seed(9, 5, 2));
  EXPECT_NE(derive_stream_seed(9, 0, 1), derive_stream_seed(9, 1, 0));
}

TEST(Pcg32, NoShortCycle) {
  Pcg32 g(5, 5);
  std::set<std::uint32_t> seen;
  bool repeated_early = false;
  for (int i = 0; i < 4096; ++i) {
    // Pairs of outputs as a weak cycle check.
    const std::uint64_t pair =
        (static_cast<std::uint64_t>(g()) << 32) | g();
    if (!seen.insert(static_cast<std::uint32_t>(pair ^ (pair >> 32))).second &&
        i < 16) {
      repeated_early = true;
    }
  }
  EXPECT_FALSE(repeated_early);
}

}  // namespace
