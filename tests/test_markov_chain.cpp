#include "linalg/markov_chain.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"
#include "sim/sampling.hpp"

namespace {

using tcw::linalg::is_stochastic;
using tcw::linalg::long_run_average;
using tcw::linalg::Matrix;
using tcw::linalg::stationary_by_power_iteration;
using tcw::linalg::stationary_distribution;
using tcw::linalg::Vector;

TEST(IsStochastic, AcceptsValidChain) {
  const Matrix p{{0.5, 0.5}, {0.2, 0.8}};
  EXPECT_TRUE(is_stochastic(p));
}

TEST(IsStochastic, RejectsBadRows) {
  EXPECT_FALSE(is_stochastic(Matrix{{0.5, 0.4}, {0.2, 0.8}}));
  EXPECT_FALSE(is_stochastic(Matrix{{1.5, -0.5}, {0.2, 0.8}}));
  EXPECT_FALSE(is_stochastic(Matrix(2, 3, 0.5)));
}

TEST(Stationary, TwoStateChainClosedForm) {
  // pi = (b, a)/(a+b) for P = [[1-a, a], [b, 1-b]].
  const double a = 0.3;
  const double b = 0.1;
  const Matrix p{{1 - a, a}, {b, 1 - b}};
  const auto pi = stationary_distribution(p);
  ASSERT_TRUE(pi.has_value());
  EXPECT_NEAR((*pi)[0], b / (a + b), 1e-12);
  EXPECT_NEAR((*pi)[1], a / (a + b), 1e-12);
}

TEST(Stationary, IdentityChainIsNotUnichain) {
  // Two absorbing states: stationary distribution is not unique.
  const auto pi = stationary_distribution(Matrix::identity(2));
  EXPECT_FALSE(pi.has_value());
}

TEST(Stationary, UniformChainIsUniform) {
  const Matrix p(4, 4, 0.25);
  const auto pi = stationary_distribution(p);
  ASSERT_TRUE(pi.has_value());
  for (const double v : *pi) EXPECT_NEAR(v, 0.25, 1e-12);
}

TEST(Stationary, PowerIterationAgreesWithDirectSolve) {
  const Matrix p{{0.7, 0.2, 0.1}, {0.1, 0.6, 0.3}, {0.4, 0.4, 0.2}};
  const auto direct = stationary_distribution(p);
  const auto power = stationary_by_power_iteration(p);
  ASSERT_TRUE(direct.has_value());
  ASSERT_TRUE(power.has_value());
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR((*direct)[i], (*power)[i], 1e-9);
  }
}

TEST(Stationary, SatisfiesBalanceEquations) {
  const Matrix p{{0.9, 0.1, 0.0}, {0.5, 0.0, 0.5}, {0.0, 0.3, 0.7}};
  const auto pi = stationary_distribution(p);
  ASSERT_TRUE(pi.has_value());
  // pi P = pi
  for (std::size_t j = 0; j < 3; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < 3; ++i) acc += (*pi)[i] * p(i, j);
    EXPECT_NEAR(acc, (*pi)[j], 1e-12);
  }
  double total = 0.0;
  for (const double v : *pi) total += v;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(LongRunAverage, WeightsRewardsByOccupancy) {
  const Vector pi{0.25, 0.75};
  const Vector r{4.0, 8.0};
  EXPECT_DOUBLE_EQ(long_run_average(pi, r), 7.0);
}

// Property: random ergodic chains -- direct and power methods agree and
// satisfy the balance equations.
class StationaryRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(StationaryRandomTest, RandomErgodicChain) {
  tcw::sim::Rng rng(99 + static_cast<unsigned>(GetParam()));
  const std::size_t n = 2 + tcw::sim::uniform_index(rng, 9);
  Matrix p(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    double total = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      p(r, c) = 0.05 + tcw::sim::uniform01(rng);  // strictly positive
      total += p(r, c);
    }
    for (std::size_t c = 0; c < n; ++c) p(r, c) /= total;
  }
  ASSERT_TRUE(is_stochastic(p, 1e-9));
  const auto direct = stationary_distribution(p);
  const auto power = stationary_by_power_iteration(p);
  ASSERT_TRUE(direct.has_value());
  ASSERT_TRUE(power.has_value());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR((*direct)[i], (*power)[i], 1e-8);
    EXPECT_GE((*direct)[i], 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, StationaryRandomTest,
                         ::testing::Range(0, 10));

}  // namespace
