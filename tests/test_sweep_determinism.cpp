// Tier-1 determinism contract of the parallel sweep engine: the same
// SweepConfig must produce bit-identical SweepPoint vectors for every
// worker count (same derived seeds, same fixed-order reduction).
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "net/experiment.hpp"

namespace {

namespace net = tcw::net;

net::SweepConfig base_config(int threads) {
  net::SweepConfig cfg;
  cfg.offered_load = 0.5;
  cfg.message_length = 25.0;
  cfg.t_end = 20000.0;
  cfg.warmup = 2000.0;
  cfg.replications = 3;
  cfg.threads = threads;
  return cfg;
}

// Bit-identical, not approximately equal: EXPECT_EQ on doubles.
void expect_bitwise_equal(const std::vector<net::SweepPoint>& a,
                          const std::vector<net::SweepPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].constraint, b[i].constraint);
    EXPECT_EQ(a[i].p_loss, b[i].p_loss);
    EXPECT_EQ(a[i].ci95, b[i].ci95);
    EXPECT_EQ(a[i].mean_wait, b[i].mean_wait);
    EXPECT_EQ(a[i].mean_scheduling, b[i].mean_scheduling);
    EXPECT_EQ(a[i].utilization, b[i].utilization);
    EXPECT_EQ(a[i].messages, b[i].messages);
  }
}

TEST(SweepDeterminism, IdenticalAcrossThreadCounts) {
  const std::vector<double> grid{25.0, 50.0, 100.0};
  const auto serial = net::simulate_loss_curve(
      base_config(1), net::ProtocolVariant::Controlled, grid);

  const auto two_workers = net::simulate_loss_curve(
      base_config(2), net::ProtocolVariant::Controlled, grid);
  expect_bitwise_equal(serial, two_workers);

  const int hw = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  const auto hw_workers = net::simulate_loss_curve(
      base_config(hw), net::ProtocolVariant::Controlled, grid);
  expect_bitwise_equal(serial, hw_workers);

  const auto auto_workers = net::simulate_loss_curve(
      base_config(0), net::ProtocolVariant::Controlled, grid);
  expect_bitwise_equal(serial, auto_workers);
}

TEST(SweepDeterminism, CustomSweepIdenticalAcrossThreadCounts) {
  const std::vector<double> grid{30.0, 60.0};
  const auto factory = [](double k) {
    return tcw::core::ControlPolicy::optimal(k, 40.0);
  };
  const auto serial = net::simulate_loss_curve_custom(
      base_config(1), factory, grid);
  const auto parallel = net::simulate_loss_curve_custom(
      base_config(4), factory, grid);
  expect_bitwise_equal(serial, parallel);
}

TEST(SweepDeterminism, TimingIsReportedForAnyThreadCount) {
  const std::vector<double> grid{50.0};
  for (const int threads : {1, 2}) {
    net::SweepTiming timing;
    const auto pts = net::simulate_loss_curve(
        base_config(threads), net::ProtocolVariant::Controlled, grid,
        &timing);
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_EQ(timing.threads, static_cast<unsigned>(threads));
    EXPECT_EQ(timing.jobs, grid.size() * 3);  // 3 replications
    EXPECT_GT(timing.wall_seconds, 0.0);
    EXPECT_GT(timing.jobs_per_second, 0.0);
  }
}

TEST(SweepTiming, AccumulateSumsJobsAndWallClock) {
  net::SweepTiming total;
  net::SweepTiming a;
  a.threads = 2;
  a.jobs = 10;
  a.wall_seconds = 1.0;
  net::SweepTiming b;
  b.threads = 4;
  b.jobs = 30;
  b.wall_seconds = 3.0;
  total.accumulate(a);
  total.accumulate(b);
  EXPECT_EQ(total.threads, 4u);
  EXPECT_EQ(total.jobs, 40u);
  EXPECT_DOUBLE_EQ(total.wall_seconds, 4.0);
  EXPECT_DOUBLE_EQ(total.jobs_per_second, 10.0);
}

}  // namespace
