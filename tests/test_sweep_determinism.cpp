// Tier-1 determinism contract of the parallel sweep engine: the same
// SweepConfig must produce bit-identical SweepPoint vectors for every
// worker count (same derived seeds, same fixed-order reduction).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "chan/arrivals.hpp"
#include "exec/sweep_scheduler.hpp"
#include "exec/thread_pool.hpp"
#include "net/aggregate_sim.hpp"
#include "net/experiment.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"

namespace {

namespace net = tcw::net;
namespace sim = tcw::sim;

net::SweepConfig base_config(int threads) {
  net::SweepConfig cfg;
  cfg.offered_load = 0.5;
  cfg.message_length = 25.0;
  cfg.t_end = 20000.0;
  cfg.warmup = 2000.0;
  cfg.replications = 3;
  cfg.threads = threads;
  return cfg;
}

// Bit-identical, not approximately equal: EXPECT_EQ on doubles.
void expect_bitwise_equal(const std::vector<net::SweepPoint>& a,
                          const std::vector<net::SweepPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].constraint, b[i].constraint);
    EXPECT_EQ(a[i].p_loss, b[i].p_loss);
    EXPECT_EQ(a[i].ci95, b[i].ci95);
    EXPECT_EQ(a[i].mean_wait, b[i].mean_wait);
    EXPECT_EQ(a[i].mean_scheduling, b[i].mean_scheduling);
    EXPECT_EQ(a[i].utilization, b[i].utilization);
    EXPECT_EQ(a[i].messages, b[i].messages);
  }
}

std::vector<net::SweepPoint> sweep(const net::SweepConfig& cfg,
                                   net::ProtocolVariant v,
                                   const std::vector<double>& grid,
                                   net::SweepTiming* timing = nullptr) {
  return net::run_sweep({.config = cfg, .constraints = grid, .variant = v,
                         .timing = timing})
      .points();
}

TEST(SweepDeterminism, IdenticalAcrossThreadCounts) {
  const std::vector<double> grid{25.0, 50.0, 100.0};
  const auto serial =
      sweep(base_config(1), net::ProtocolVariant::Controlled, grid);

  const auto two_workers =
      sweep(base_config(2), net::ProtocolVariant::Controlled, grid);
  expect_bitwise_equal(serial, two_workers);

  const int hw = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  const auto hw_workers =
      sweep(base_config(hw), net::ProtocolVariant::Controlled, grid);
  expect_bitwise_equal(serial, hw_workers);

  const auto auto_workers =
      sweep(base_config(0), net::ProtocolVariant::Controlled, grid);
  expect_bitwise_equal(serial, auto_workers);
}

TEST(SweepDeterminism, CustomSweepIdenticalAcrossThreadCounts) {
  const std::vector<double> grid{30.0, 60.0};
  const auto factory = [](double k) {
    return tcw::core::ControlPolicy::optimal(k, 40.0);
  };
  const auto serial =
      net::run_sweep({.config = base_config(1), .constraints = grid,
                      .make_policy = factory})
          .points();
  const auto parallel =
      net::run_sweep({.config = base_config(4), .constraints = grid,
                      .make_policy = factory})
          .points();
  expect_bitwise_equal(serial, parallel);
}

TEST(SweepDeterminism, TimingIsReportedForAnyThreadCount) {
  const std::vector<double> grid{50.0};
  for (const int threads : {1, 2}) {
    net::SweepTiming timing;
    const auto pts = sweep(base_config(threads),
                           net::ProtocolVariant::Controlled, grid, &timing);
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_EQ(timing.threads, static_cast<unsigned>(threads));
    EXPECT_EQ(timing.jobs, grid.size() * 3);  // 3 replications
    EXPECT_GT(timing.wall_seconds, 0.0);
    EXPECT_GT(timing.jobs_per_second, 0.0);
  }
}

TEST(SweepTrace, TracedJobMatchesSoloRerunAndChangesNothing) {
  // One (K, replication) shard of a parallel sweep captures its event
  // trace; the records must equal a solo simulator run with the same
  // derived seed, and attaching the trace must not perturb the sweep.
  const std::vector<double> grid{25.0, 50.0, 100.0};
  const std::size_t trace_point = 1;
  const int trace_replication = 2;

  net::SweepConfig cfg = base_config(4);
  sim::TraceLog sweep_trace;
  cfg.trace_request = {&sweep_trace, trace_point, trace_replication};
  const auto traced_points =
      sweep(cfg, net::ProtocolVariant::Controlled, grid);
  EXPECT_GT(sweep_trace.total_recorded(), 0u);

  // Solo rerun of exactly that shard: same config knobs, same policy,
  // same derived stream seed.
  net::AggregateConfig solo_cfg;
  solo_cfg.policy = net::policy_for(net::ProtocolVariant::Controlled,
                                    grid[trace_point],
                                    cfg.heuristic_window_width());
  solo_cfg.message_length = cfg.message_length;
  solo_cfg.success_overhead = cfg.success_overhead;
  solo_cfg.t_end = cfg.t_end;
  solo_cfg.warmup = cfg.warmup;
  solo_cfg.seed = tcw::sim::derive_stream_seed(
      cfg.base_seed, trace_point,
      static_cast<std::size_t>(trace_replication));
  sim::TraceLog solo_trace;
  solo_cfg.trace = &solo_trace;
  net::AggregateSimulator solo(
      solo_cfg, std::make_unique<tcw::chan::PoissonProcess>(cfg.lambda()));
  solo.run();

  EXPECT_EQ(sweep_trace.total_recorded(), solo_trace.total_recorded());
  EXPECT_EQ(sweep_trace.snapshot(), solo_trace.snapshot());

  // Tracing is observation only: the traced sweep's numbers are
  // bit-identical to an untraced serial sweep.
  const auto untraced =
      sweep(base_config(1), net::ProtocolVariant::Controlled, grid);
  expect_bitwise_equal(traced_points, untraced);
}

TEST(SweepTrace, TracedShardWorksUnderExternalScheduler) {
  // The same plumbing through a scheduler-bound run_sweep: only the
  // designated shard writes the log, and results stay bit-identical.
  const std::vector<double> grid{30.0, 60.0};
  net::SweepConfig cfg = base_config(0);
  sim::TraceLog trace;
  cfg.trace_request = {&trace, 0, 1};

  tcw::exec::ThreadPool pool(2);
  tcw::exec::SweepScheduler scheduler(pool);
  auto handle = net::run_sweep(
      {.config = cfg, .constraints = grid,
       .variant = net::ProtocolVariant::Controlled},
      {.scheduler = &scheduler, .name = "traced"});
  scheduler.run();
  EXPECT_GT(trace.total_recorded(), 0u);

  const auto untraced =
      sweep(base_config(1), net::ProtocolVariant::Controlled, grid);
  expect_bitwise_equal(handle.points(), untraced);
}

TEST(SweepTiming, AccumulateSumsJobsAndWallClock) {
  net::SweepTiming total;
  net::SweepTiming a;
  a.threads = 2;
  a.jobs = 10;
  a.wall_seconds = 1.0;
  net::SweepTiming b;
  b.threads = 4;
  b.jobs = 30;
  b.wall_seconds = 3.0;
  total.accumulate(a);
  total.accumulate(b);
  EXPECT_EQ(total.threads, 4u);
  EXPECT_EQ(total.jobs, 40u);
  EXPECT_DOUBLE_EQ(total.wall_seconds, 4.0);
  EXPECT_DOUBLE_EQ(total.jobs_per_second, 10.0);
}

}  // namespace
