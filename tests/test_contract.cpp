#include "util/contract.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Contract, PassingChecksDoNothing) {
  EXPECT_NO_THROW(TCW_EXPECTS(1 + 1 == 2));
  EXPECT_NO_THROW(TCW_ENSURES(true));
  EXPECT_NO_THROW(TCW_ASSERT(42 > 0));
}

TEST(Contract, FailingPreconditionThrows) {
  EXPECT_THROW(TCW_EXPECTS(false), tcw::ContractViolation);
}

TEST(Contract, FailingPostconditionThrows) {
  EXPECT_THROW(TCW_ENSURES(2 < 1), tcw::ContractViolation);
}

TEST(Contract, FailingInvariantThrows) {
  EXPECT_THROW(TCW_ASSERT(false), tcw::ContractViolation);
}

TEST(Contract, MessageNamesKindExpressionAndLocation) {
  try {
    TCW_EXPECTS(1 == 2);
    FAIL() << "should have thrown";
  } catch (const tcw::ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("test_contract.cpp"), std::string::npos);
  }
}

TEST(Contract, AssertLogWritesBreachToStderrWithoutThrowing) {
  testing::internal::CaptureStderr();
  EXPECT_NO_THROW(TCW_ASSERT_LOG(1 == 2));
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("invariant"), std::string::npos) << err;
  EXPECT_NE(err.find("1 == 2"), std::string::npos) << err;
  EXPECT_NE(err.find("test_contract.cpp"), std::string::npos) << err;
}

TEST(Contract, AssertLogIsSilentOnPass) {
  testing::internal::CaptureStderr();
  TCW_ASSERT_LOG(2 > 1);
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(Contract, SideEffectsInConditionRunOnce) {
  int calls = 0;
  const auto bump = [&calls] {
    ++calls;
    return true;
  };
  TCW_ASSERT(bump());
  EXPECT_EQ(calls, 1);
}

}  // namespace
