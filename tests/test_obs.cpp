// The observability layer: metrics registry merging, JSON escaping,
// leveled logging with the test capture hook, timeline export, manifest
// rendering, and -- the hard invariant -- overlay-only behaviour: a
// scheduled run's results are bit-identical with every overlay attached.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "exec/sweep_scheduler.hpp"
#include "exec/thread_pool.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/manifest.hpp"
#include "obs/registry.hpp"
#include "obs/timeline.hpp"
#include "sim/rng.hpp"

namespace tcw {
namespace {

// ---------------------------------------------------------------- json

TEST(ObsJson, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(obs::json_escape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(obs::json_quote("x\"y"), "\"x\\\"y\"");
  EXPECT_EQ(obs::json_quote(""), "\"\"");
}

TEST(ObsJson, BenchJsonEscapesSweepNames) {
  exec::SchedulerReport report;
  report.threads = 2;
  report.shards = 1;
  exec::SweepTimingEntry entry;
  entry.name = "we\"ird\\name";
  entry.shards = 1;
  report.sweeps.push_back(entry);
  const std::string json = report.bench_json("sui\"te");
  EXPECT_NE(json.find("\"sui\\\"te\""), std::string::npos);
  EXPECT_NE(json.find("we\\\"ird\\\\name"), std::string::npos);
  // The raw unescaped quote must not survive anywhere.
  EXPECT_EQ(json.find("we\"ird"), std::string::npos);
}

// ------------------------------------------------------------ registry

TEST(ObsRegistry, CountsAcrossThreadsAndResets) {
  obs::Registry reg;
  obs::Counter c = reg.counter("test.threads");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c]() {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(reg.snapshot().counter("test.threads"), kThreads * kPerThread);
  EXPECT_EQ(reg.snapshot().counter("no.such.counter"), 0u);

  reg.reset();
  EXPECT_EQ(reg.snapshot().counter("test.threads"), 0u);
  c.add(3);  // handles survive reset
  EXPECT_EQ(reg.snapshot().counter("test.threads"), 3u);
}

TEST(ObsRegistry, SameNameSharesCells) {
  obs::Registry reg;
  obs::Counter a = reg.counter("shared");
  obs::Counter b = reg.counter("shared");
  a.add(2);
  b.add(5);
  EXPECT_EQ(reg.snapshot().counter("shared"), 7u);
}

TEST(ObsRegistry, InertHandleIsANoOp) {
  obs::Counter inert;
  inert.add(42);  // must not crash
  obs::Histogram h;
  h.record(1.0);
}

TEST(ObsRegistry, HistogramBucketsIncludingOverflow) {
  obs::Registry reg;
  obs::Histogram h = reg.histogram("lat", {0.01, 0.1, 1.0});
  h.record(0.005);  // bucket 0
  h.record(0.01);   // bucket 0 (<= bound)
  h.record(0.05);   // bucket 1
  h.record(0.5);    // bucket 2
  h.record(2.0);    // overflow
  h.record(100.0);  // overflow
  const obs::RegistrySnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const obs::HistogramSnapshot& hs = snap.histograms[0];
  EXPECT_EQ(hs.name, "lat");
  ASSERT_EQ(hs.bounds.size(), 3u);
  ASSERT_EQ(hs.counts.size(), 4u);
  EXPECT_EQ(hs.counts[0], 2u);
  EXPECT_EQ(hs.counts[1], 1u);
  EXPECT_EQ(hs.counts[2], 1u);
  EXPECT_EQ(hs.counts[3], 2u);
  EXPECT_EQ(hs.total(), 6u);
}

TEST(ObsRegistry, SnapshotJsonIsSortedAndWellFormed) {
  obs::Registry reg;
  reg.counter("b.second").add(2);
  reg.counter("a.first").add(1);
  reg.histogram("h", {1.0}).record(0.5);
  const std::string json = reg.snapshot().to_json();
  const std::size_t a = json.find("a.first");
  const std::size_t b = json.find("b.second");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  EXPECT_LT(a, b);  // std::map keeps snapshots name-sorted
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"bounds\""), std::string::npos);
  EXPECT_NE(json.find("\"counts\""), std::string::npos);
}

// ----------------------------------------------------------------- log

struct CaptureGuard {
  std::vector<obs::LogCaptureEntry> entries;
  CaptureGuard() { obs::set_log_capture_for_test(&entries); }
  ~CaptureGuard() { obs::set_log_capture_for_test(nullptr); }
};

TEST(ObsLog, CaptureHookAndThreshold) {
  CaptureGuard capture;
  obs::log(obs::LogLevel::kWarn, "answer=%d", 42);
  ASSERT_EQ(capture.entries.size(), 1u);
  EXPECT_EQ(capture.entries[0].level, obs::LogLevel::kWarn);
  EXPECT_EQ(capture.entries[0].message, "answer=42");

  // Below the default kInfo threshold: dropped.
  obs::log(obs::LogLevel::kDebug, "invisible");
  EXPECT_EQ(capture.entries.size(), 1u);

  obs::set_log_threshold(obs::LogLevel::kDebug);
  obs::log(obs::LogLevel::kDebug, "now visible");
  obs::set_log_threshold(obs::LogLevel::kInfo);
  ASSERT_EQ(capture.entries.size(), 2u);
  EXPECT_EQ(capture.entries[1].message, "now visible");
}

// ------------------------------------------------------------ timeline

TEST(ObsTimeline, RecordsSpansAndRendersChromeTrace) {
  obs::Timeline timeline;
  const auto t0 = std::chrono::steady_clock::now();
  timeline.record_span("alpha", 0, 1, false, t0,
                       t0 + std::chrono::microseconds(500));
  timeline.record_span("be\"ta", 3, 2, true,
                       t0 + std::chrono::microseconds(100),
                       t0 + std::chrono::microseconds(300));
  EXPECT_EQ(timeline.span_count(), 2u);

  const std::string json = timeline.to_chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("alpha#0"), std::string::npos);
  EXPECT_NE(json.find("\"stolen\":true"), std::string::npos);
  // The quote in the sweep name must be escaped in the output.
  EXPECT_EQ(json.find("be\"ta"), std::string::npos);
  EXPECT_NE(json.find("be\\\"ta"), std::string::npos);

  timeline.clear();
  EXPECT_EQ(timeline.span_count(), 0u);
}

TEST(ObsTimeline, WriteFailureLogsAndReturnsFalse) {
  CaptureGuard capture;
  obs::Timeline timeline;
  EXPECT_FALSE(
      timeline.write_chrome_trace("/nonexistent-dir-tcw/trace.json"));
  ASSERT_FALSE(capture.entries.empty());
  EXPECT_EQ(capture.entries[0].level, obs::LogLevel::kWarn);
}

// ------------------------------------------------------------ manifest

TEST(ObsManifest, CollectorIsGatedByEnabled) {
  obs::ManifestCollector& collector = obs::ManifestCollector::global();
  collector.clear();
  collector.set_enabled(false);
  collector.add_sweep({"dropped", 1, 0, 1, 2, {3}});
  EXPECT_TRUE(collector.sweeps().empty());

  collector.set_enabled(true);
  collector.add_sweep({"kept", 4, 1, 0xdeadbeef, 0x1234, {5, 6, 7, 8}});
  obs::ManifestCacheStats stats;
  stats.suite = "kept";
  stats.path = "/tmp/cache";
  collector.add_cache(stats);
  ASSERT_EQ(collector.sweeps().size(), 1u);
  EXPECT_EQ(collector.sweeps()[0].name, "kept");
  EXPECT_EQ(collector.caches().size(), 1u);
  collector.set_enabled(false);
  collector.clear();
}

TEST(ObsManifest, RenderContainsSchemaSweepsAndHexSeeds) {
  obs::ManifestCollector& collector = obs::ManifestCollector::global();
  collector.clear();
  collector.set_enabled(true);
  obs::ManifestSweep sweep;
  sweep.name = "panel/controlled";
  sweep.jobs = 2;
  sweep.cached_jobs = 1;
  sweep.base_seed = 0x00000000deadbeefULL;
  sweep.config_fingerprint = 0xfeedface12345678ULL;
  sweep.seeds = {0x1ULL, 0xffffffffffffffffULL};
  collector.add_sweep(sweep);

  obs::RunManifestInfo info;
  info.run = "unit_test";
  info.threads = 4;
  info.scheduler_report_json = "{\"suite\":\"unit_test\"}";
  const std::string json = obs::render_run_manifest(info);
  collector.set_enabled(false);
  collector.clear();

  EXPECT_NE(json.find("tcw-run-manifest-v1"), std::string::npos);
  EXPECT_NE(json.find("\"run\":\"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"threads\":4"), std::string::npos);
  EXPECT_NE(json.find("panel/controlled"), std::string::npos);
  // u64 values are hex strings, never bare JSON numbers.
  EXPECT_NE(json.find("\"0x00000000deadbeef\""), std::string::npos);
  EXPECT_NE(json.find("\"0xfeedface12345678\""), std::string::npos);
  EXPECT_NE(json.find("\"0xffffffffffffffff\""), std::string::npos);
  EXPECT_NE(json.find("\"scheduler_report\""), std::string::npos);
  EXPECT_NE(json.find("\"registry\""), std::string::npos);
  EXPECT_NE(json.find("\"created_utc\""), std::string::npos);
}

// ------------------------------------------------ overlay determinism

// Deterministic payload per shard: results depend only on the derived
// seed, never on scheduling. Mirrors how the sweep engine shards work.
std::uint64_t shard_value(std::uint64_t base_seed, std::size_t shard) {
  sim::Rng rng(sim::derive_stream_seed(base_seed, shard, 0));
  std::uint64_t acc = 0;
  for (int i = 0; i < 64; ++i) {
    acc ^= rng();
    acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
  }
  return acc;
}

std::vector<std::uint64_t> run_scheduled(unsigned threads,
                                         obs::Timeline* timeline,
                                         bool progress,
                                         exec::SchedulerReport* report) {
  constexpr std::size_t kShards = 24;
  std::vector<std::uint64_t> out(kShards, 0);
  exec::ThreadPool pool(threads);
  exec::SweepScheduler scheduler(pool);
  if (timeline != nullptr) scheduler.set_timeline(timeline);
  scheduler.set_progress(progress);
  std::vector<std::function<void()>> shards;
  shards.reserve(kShards);
  for (std::size_t i = 0; i < kShards; ++i) {
    shards.push_back([&out, i]() { out[i] = shard_value(99, i); });
  }
  scheduler.add_sweep("overlay", std::move(shards));
  exec::SchedulerReport r = scheduler.run();
  if (report != nullptr) *report = r;
  return out;
}

TEST(ObsOverlay, ResultsAreIdenticalWithEveryOverlayAttached) {
  const std::vector<std::uint64_t> plain =
      run_scheduled(1, nullptr, false, nullptr);

  obs::Timeline timeline;
  exec::SchedulerReport report;
  const std::vector<std::uint64_t> observed =
      run_scheduled(4, &timeline, /*progress=*/true, &report);

  EXPECT_EQ(plain, observed);
  // One complete span per executed shard.
  EXPECT_EQ(timeline.span_count(), report.shards);
  EXPECT_EQ(report.shards, plain.size());
}

TEST(ObsOverlay, SchedulerFeedsRegistryCounters) {
  obs::Registry& reg = obs::Registry::global();
  reg.reset();
  run_scheduled(2, nullptr, false, nullptr);
  const obs::RegistrySnapshot snap = reg.snapshot();
  EXPECT_GE(snap.counter("exec.scheduler.runs"), 1u);
  EXPECT_EQ(snap.counter("exec.scheduler.shards_home") +
                snap.counter("exec.scheduler.shards_stolen"),
            24u);
}

}  // namespace
}  // namespace tcw
