#include "dist/pmf.hpp"

#include <gtest/gtest.h>

#include "dist/families.hpp"
#include "util/contract.hpp"

namespace {

using tcw::dist::Pmf;

TEST(Pmf, EmptyDefaults) {
  Pmf p;
  EXPECT_TRUE(p.empty());
  EXPECT_DOUBLE_EQ(p.total_mass(), 0.0);
  EXPECT_DOUBLE_EQ(p.at(3), 0.0);
}

TEST(Pmf, BasicAccessors) {
  Pmf p(std::vector<double>{0.25, 0.5, 0.25});
  EXPECT_EQ(p.size(), 3u);
  EXPECT_DOUBLE_EQ(p.at(1), 0.5);
  EXPECT_DOUBLE_EQ(p.at(99), 0.0);
  EXPECT_DOUBLE_EQ(p.total_mass(), 1.0);
  EXPECT_DOUBLE_EQ(p.mean(), 1.0);
  EXPECT_DOUBLE_EQ(p.variance(), 0.5);
}

TEST(Pmf, NegativeMassRejected) {
  EXPECT_THROW(Pmf(std::vector<double>{0.5, -0.1}), tcw::ContractViolation);
}

TEST(Pmf, CdfAndSf) {
  Pmf p(std::vector<double>{0.1, 0.2, 0.3, 0.4});
  EXPECT_DOUBLE_EQ(p.cdf(0), 0.1);
  EXPECT_NEAR(p.cdf(2), 0.6, 1e-15);
  EXPECT_DOUBLE_EQ(p.cdf(10), 1.0);
  EXPECT_NEAR(p.sf(1), 0.7, 1e-15);
}

TEST(Pmf, TailMassCountsTowardTotals) {
  Pmf p(std::vector<double>{0.5, 0.3}, 0.2);
  EXPECT_DOUBLE_EQ(p.total_mass(), 1.0);
  EXPECT_NEAR(p.sf(1), 0.2, 1e-15);
}

TEST(Pmf, QuantileFindsThreshold) {
  Pmf p(std::vector<double>{0.1, 0.2, 0.3, 0.4});
  EXPECT_EQ(p.quantile(0.05), 0u);
  EXPECT_EQ(p.quantile(0.3), 1u);
  EXPECT_EQ(p.quantile(0.9), 3u);
  EXPECT_EQ(p.quantile(1.0), 3u);
}

TEST(Pmf, NormalizeScalesToOne) {
  Pmf p(std::vector<double>{2.0, 2.0}, 1.0);
  p.normalize();
  EXPECT_NEAR(p.total_mass(), 1.0, 1e-15);
  EXPECT_NEAR(p.at(0), 0.4, 1e-15);
  EXPECT_NEAR(p.tail_mass(), 0.2, 1e-15);
}

TEST(Pmf, TrimMovesTinyTailIntoTailMass) {
  Pmf p(std::vector<double>{0.9, 0.1, 1e-20, 1e-20});
  p.trim(1e-15);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_NEAR(p.tail_mass(), 2e-20, 1e-25);
}

TEST(Pmf, TruncateKeepsTotalMass) {
  Pmf p(std::vector<double>{0.25, 0.25, 0.25, 0.25});
  p.truncate(2);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_DOUBLE_EQ(p.tail_mass(), 0.5);
  EXPECT_DOUBLE_EQ(p.total_mass(), 1.0);
}

TEST(Convolve, DeltaIsNeutral) {
  const Pmf x(std::vector<double>{0.5, 0.5});
  const Pmf d = tcw::dist::delta(0);
  const Pmf y = Pmf::convolve(x, d, 16);
  EXPECT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y.at(0), 0.5);
  EXPECT_DOUBLE_EQ(y.at(1), 0.5);
}

TEST(Convolve, ShiftByDelta) {
  const Pmf x(std::vector<double>{0.5, 0.5});
  const Pmf y = Pmf::convolve(x, tcw::dist::delta(3), 16);
  EXPECT_DOUBLE_EQ(y.at(3), 0.5);
  EXPECT_DOUBLE_EQ(y.at(4), 0.5);
  EXPECT_DOUBLE_EQ(y.at(0), 0.0);
}

TEST(Convolve, TwoCoins) {
  const Pmf coin(std::vector<double>{0.5, 0.5});
  const Pmf sum = Pmf::convolve(coin, coin, 16);
  EXPECT_DOUBLE_EQ(sum.at(0), 0.25);
  EXPECT_DOUBLE_EQ(sum.at(1), 0.5);
  EXPECT_DOUBLE_EQ(sum.at(2), 0.25);
}

TEST(Convolve, IsCommutative) {
  const Pmf a(std::vector<double>{0.2, 0.3, 0.5});
  const Pmf b(std::vector<double>{0.7, 0.1, 0.1, 0.1});
  const Pmf ab = Pmf::convolve(a, b, 32);
  const Pmf ba = Pmf::convolve(b, a, 32);
  ASSERT_EQ(ab.size(), ba.size());
  for (std::size_t k = 0; k < ab.size(); ++k) {
    EXPECT_NEAR(ab.at(k), ba.at(k), 1e-15);
  }
}

TEST(Convolve, MeansAdd) {
  const Pmf a(std::vector<double>{0.2, 0.3, 0.5});
  const Pmf b(std::vector<double>{0.1, 0.9});
  const Pmf ab = Pmf::convolve(a, b, 32);
  EXPECT_NEAR(ab.mean(), a.mean() + b.mean(), 1e-12);
}

TEST(Convolve, VariancesAdd) {
  const Pmf a(std::vector<double>{0.2, 0.3, 0.5});
  const Pmf b(std::vector<double>{0.1, 0.9});
  const Pmf ab = Pmf::convolve(a, b, 32);
  EXPECT_NEAR(ab.variance(), a.variance() + b.variance(), 1e-12);
}

TEST(Convolve, TruncationPreservesTotalMass) {
  const Pmf a(std::vector<double>{0.25, 0.25, 0.25, 0.25});
  const Pmf b = a;
  const Pmf ab = Pmf::convolve(a, b, 3);  // support would be 7 wide
  EXPECT_EQ(ab.size(), 3u);
  EXPECT_NEAR(ab.total_mass(), 1.0, 1e-12);
  EXPECT_GT(ab.tail_mass(), 0.0);
}

TEST(ConvolvePower, ZeroPowerIsDelta) {
  const Pmf a(std::vector<double>{0.5, 0.5});
  const Pmf p0 = Pmf::convolve_power(a, 0, 16);
  EXPECT_DOUBLE_EQ(p0.at(0), 1.0);
}

TEST(ConvolvePower, MatchesRepeatedConvolution) {
  const Pmf a(std::vector<double>{0.3, 0.4, 0.3});
  Pmf manual = tcw::dist::delta(0);
  for (int i = 0; i < 5; ++i) manual = Pmf::convolve(manual, a, 64);
  const Pmf fast = Pmf::convolve_power(a, 5, 64);
  for (std::size_t k = 0; k < manual.size(); ++k) {
    EXPECT_NEAR(fast.at(k), manual.at(k), 1e-12) << "k=" << k;
  }
}

TEST(Equilibrium, SumsToOne) {
  const Pmf s(std::vector<double>{0.0, 0.25, 0.5, 0.25});
  const Pmf eq = s.equilibrium();
  EXPECT_NEAR(eq.total_mass(), 1.0, 1e-12);
}

TEST(Equilibrium, DeterministicServiceIsDiscreteUniform) {
  // Residual of a constant service time M is uniform over {0..M-1}.
  const Pmf s = tcw::dist::deterministic(4);
  const Pmf eq = s.equilibrium();
  ASSERT_EQ(eq.size(), 4u);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_NEAR(eq.at(j), 0.25, 1e-12);
}

TEST(Equilibrium, KnownTwoPointCase) {
  // X in {1, 3} each w.p. 1/2; E[X] = 2; P(X>0)=1, P(X>1)=1/2, P(X>2)=1/2.
  const Pmf s(std::vector<double>{0.0, 0.5, 0.0, 0.5});
  const Pmf eq = s.equilibrium();
  ASSERT_EQ(eq.size(), 3u);
  EXPECT_NEAR(eq.at(0), 0.5, 1e-12);
  EXPECT_NEAR(eq.at(1), 0.25, 1e-12);
  EXPECT_NEAR(eq.at(2), 0.25, 1e-12);
}

TEST(Equilibrium, ZeroMeanRejected) {
  const Pmf s = tcw::dist::delta(0);
  EXPECT_THROW(s.equilibrium(), tcw::ContractViolation);
}

TEST(Mixture, WeightsAndRenormalization) {
  const Pmf a = tcw::dist::delta(0);
  const Pmf b = tcw::dist::delta(2);
  const Pmf mix = Pmf::mixture({a, b}, {1.0, 3.0});
  EXPECT_NEAR(mix.at(0), 0.25, 1e-15);
  EXPECT_NEAR(mix.at(2), 0.75, 1e-15);
  EXPECT_NEAR(mix.mean(), 1.5, 1e-15);
}

TEST(Mixture, MismatchedArgumentsRejected) {
  const Pmf a = tcw::dist::delta(0);
  EXPECT_THROW(Pmf::mixture({a}, {1.0, 2.0}), tcw::ContractViolation);
  EXPECT_THROW(Pmf::mixture({}, {}), tcw::ContractViolation);
  EXPECT_THROW(Pmf::mixture({a}, {0.0}), tcw::ContractViolation);
}

TEST(Shifted, MovesSupport) {
  const Pmf a(std::vector<double>{0.5, 0.5});
  const Pmf s = a.shifted(3);
  EXPECT_DOUBLE_EQ(s.at(3), 0.5);
  EXPECT_DOUBLE_EQ(s.at(4), 0.5);
  EXPECT_NEAR(s.mean(), a.mean() + 3.0, 1e-15);
}

}  // namespace
