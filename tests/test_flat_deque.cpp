// FlatChunkDeque: the aggregate simulator's pending-arrival structure.
// Unit tests over chunk boundaries plus a randomized cross-check against
// std::multiset under the structure's real workload mix (monotone
// push_back, prefix purges, single mid erases).
#include <gtest/gtest.h>

#include <random>
#include <set>
#include <vector>

#include "util/contract.hpp"
#include "util/flat_deque.hpp"

using tcw::FlatChunkDeque;

namespace {

std::vector<double> contents(const FlatChunkDeque& d) {
  std::vector<double> out;
  d.for_each([&](double v) { out.push_back(v); });
  return out;
}

}  // namespace

TEST(FlatDeque, StartsEmpty) {
  FlatChunkDeque d(4);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.size(), 0u);
  EXPECT_TRUE(d.is_end(d.lower_bound(0.0)));
  EXPECT_TRUE(d.check_invariant());
}

TEST(FlatDeque, PushSpansChunks) {
  FlatChunkDeque d(3);
  for (int i = 0; i < 10; ++i) d.push_back(i);
  EXPECT_EQ(d.size(), 10u);
  EXPECT_DOUBLE_EQ(d.front(), 0.0);
  EXPECT_DOUBLE_EQ(d.back(), 9.0);
  EXPECT_EQ(contents(d), (std::vector<double>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
  EXPECT_TRUE(d.check_invariant());
}

TEST(FlatDeque, PopFrontWalksChunkBoundary) {
  FlatChunkDeque d(3);
  for (int i = 0; i < 7; ++i) d.push_back(i);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(d.front(), i);
    d.pop_front();
    EXPECT_TRUE(d.check_invariant()) << "after pop " << i;
  }
  EXPECT_EQ(contents(d), (std::vector<double>{5, 6}));
}

TEST(FlatDeque, LowerBoundHitsEveryPosition) {
  FlatChunkDeque d(3);
  for (int i = 0; i < 11; ++i) d.push_back(2.0 * i);  // 0,2,...,20
  for (int i = 0; i < 11; ++i) {
    // Exact hit.
    auto p = d.lower_bound(2.0 * i);
    ASSERT_FALSE(d.is_end(p));
    EXPECT_DOUBLE_EQ(d.at(p), 2.0 * i);
    // Between elements: rounds up.
    p = d.lower_bound(2.0 * i - 1.0);
    ASSERT_FALSE(d.is_end(p));
    EXPECT_DOUBLE_EQ(d.at(p), 2.0 * i);
  }
  EXPECT_TRUE(d.is_end(d.lower_bound(20.5)));
}

TEST(FlatDeque, LowerBoundAfterPopFrontRespectsHead) {
  FlatChunkDeque d(4);
  for (int i = 0; i < 6; ++i) d.push_back(i);
  d.pop_front();
  d.pop_front();  // live: 2..5, head_ == 2 in chunk 0
  const auto p = d.lower_bound(0.0);
  ASSERT_FALSE(d.is_end(p));
  EXPECT_DOUBLE_EQ(d.at(p), 2.0);
  EXPECT_TRUE(d.check_invariant());
}

TEST(FlatDeque, NextIteratesInOrder) {
  FlatChunkDeque d(2);
  for (int i = 0; i < 5; ++i) d.push_back(i);
  auto p = d.begin_pos();
  for (int i = 0; i < 5; ++i) {
    ASSERT_FALSE(d.is_end(p));
    EXPECT_DOUBLE_EQ(d.at(p), i);
    p = d.next(p);
  }
  EXPECT_TRUE(d.is_end(p));
}

TEST(FlatDeque, EraseMidAndAtHead) {
  FlatChunkDeque d(3);
  for (int i = 0; i < 7; ++i) d.push_back(i);
  d.erase(d.lower_bound(4.0));  // mid of chunk 1
  EXPECT_EQ(contents(d), (std::vector<double>{0, 1, 2, 3, 5, 6}));
  d.erase(d.lower_bound(0.0));  // head element routes through pop_front
  EXPECT_EQ(contents(d), (std::vector<double>{1, 2, 3, 5, 6}));
  EXPECT_TRUE(d.check_invariant());
}

TEST(FlatDeque, EraseOnlyElementOfChunkDropsChunk) {
  FlatChunkDeque d(2);
  for (int i = 0; i < 5; ++i) d.push_back(i);  // chunks {0,1},{2,3},{4}
  d.erase(d.lower_bound(4.0));
  EXPECT_EQ(contents(d), (std::vector<double>{0, 1, 2, 3}));
  EXPECT_TRUE(d.check_invariant());
  // Drain chunk 0 to a single live element, then erase it.
  d.pop_front();
  d.erase(d.lower_bound(1.0));
  EXPECT_EQ(contents(d), (std::vector<double>{2, 3}));
  EXPECT_TRUE(d.check_invariant());
}

TEST(FlatDeque, ClearResets) {
  FlatChunkDeque d(3);
  for (int i = 0; i < 8; ++i) d.push_back(i);
  d.clear();
  EXPECT_TRUE(d.empty());
  EXPECT_TRUE(d.check_invariant());
  d.push_back(-5.0);  // reusable after clear
  EXPECT_DOUBLE_EQ(d.front(), -5.0);
}

TEST(FlatDeque, PushBelowBackRejected) {
  FlatChunkDeque d(4);
  d.push_back(3.0);
  EXPECT_THROW(d.push_back(3.0), tcw::ContractViolation);
}

// The structure's real workload, cross-checked against std::multiset:
// strictly increasing inserts, prefix purges up to a moving floor, and
// removal of the first element >= a probe point.
TEST(FlatDeque, RandomizedCrossCheckAgainstSet) {
  for (const std::size_t cap : {2u, 3u, 7u, 64u}) {
    FlatChunkDeque d(cap);
    std::multiset<double> ref;
    std::mt19937_64 rng(20261983 + cap);
    std::uniform_real_distribution<double> gap(1e-6, 3.0);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    double clock = 0.0;
    for (int step = 0; step < 5000; ++step) {
      const double action = unit(rng);
      if (action < 0.55 || ref.empty()) {
        clock += gap(rng);
        d.push_back(clock);
        ref.insert(clock);
      } else if (action < 0.75) {
        // Prefix purge to a floor inside the current range.
        const double floor =
            *ref.begin() + unit(rng) * (*ref.rbegin() - *ref.begin());
        while (!ref.empty() && *ref.begin() < floor) {
          ASSERT_DOUBLE_EQ(d.front(), *ref.begin());
          d.pop_front();
          ref.erase(ref.begin());
        }
      } else {
        // Erase the first element >= a random probe point (the
        // transmitted-arrival pattern).
        const double probe =
            *ref.begin() + unit(rng) * (*ref.rbegin() - *ref.begin());
        const auto rit = ref.lower_bound(probe);
        const auto dit = d.lower_bound(probe);
        ASSERT_EQ(rit == ref.end(), d.is_end(dit));
        if (rit != ref.end()) {
          ASSERT_DOUBLE_EQ(d.at(dit), *rit);
          d.erase(dit);
          ref.erase(rit);
        }
      }
      ASSERT_EQ(d.size(), ref.size());
      ASSERT_TRUE(d.check_invariant()) << "cap=" << cap << " step=" << step;
    }
    EXPECT_EQ(contents(d), std::vector<double>(ref.begin(), ref.end()));
  }
}
