#include "linalg/lu.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.hpp"
#include "sim/sampling.hpp"

namespace {

using tcw::linalg::inverse;
using tcw::linalg::Lu;
using tcw::linalg::Matrix;
using tcw::linalg::solve;
using tcw::linalg::Vector;

TEST(Lu, SolvesSmallSystem) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const Vector b{3.0, 5.0};
  const auto x = solve(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 0.8, 1e-12);
  EXPECT_NEAR((*x)[1], 1.4, 1e-12);
}

TEST(Lu, SolvesSystemRequiringPivoting) {
  // Zero on the initial pivot position.
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const Vector b{2.0, 3.0};
  const auto x = solve(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 3.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(Lu, DetectsSingularMatrix) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_FALSE(Lu::factor(a).has_value());
}

TEST(Lu, Determinant) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const auto lu = Lu::factor(a);
  ASSERT_TRUE(lu.has_value());
  EXPECT_NEAR(lu->determinant(), -2.0, 1e-12);
}

TEST(Lu, DeterminantOfIdentity) {
  const auto lu = Lu::factor(Matrix::identity(4));
  ASSERT_TRUE(lu.has_value());
  EXPECT_NEAR(lu->determinant(), 1.0, 1e-12);
}

TEST(Lu, InverseTimesOriginalIsIdentity) {
  const Matrix a{{4.0, 7.0}, {2.0, 6.0}};
  const auto inv = inverse(a);
  ASSERT_TRUE(inv.has_value());
  EXPECT_LT(Matrix::max_abs_diff(a * *inv, Matrix::identity(2)), 1e-12);
  EXPECT_LT(Matrix::max_abs_diff(*inv * a, Matrix::identity(2)), 1e-12);
}

TEST(Lu, ReusableFactorizationForMultipleRhs) {
  const Matrix a{{3.0, 1.0}, {1.0, 2.0}};
  const auto lu = Lu::factor(a);
  ASSERT_TRUE(lu.has_value());
  const Vector x1 = lu->solve({1.0, 0.0});
  const Vector x2 = lu->solve({0.0, 1.0});
  const Vector r1 = a * x1;
  const Vector r2 = a * x2;
  EXPECT_NEAR(r1[0], 1.0, 1e-12);
  EXPECT_NEAR(r1[1], 0.0, 1e-12);
  EXPECT_NEAR(r2[0], 0.0, 1e-12);
  EXPECT_NEAR(r2[1], 1.0, 1e-12);
}

// Property: random well-conditioned systems solve to small residual.
class LuRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(LuRandomTest, RandomSystemResidualIsTiny) {
  tcw::sim::Rng rng(2000 + static_cast<unsigned>(GetParam()));
  const std::size_t n = 3 + tcw::sim::uniform_index(rng, 15);
  Matrix a(n, n);
  Vector b(n);
  for (std::size_t r = 0; r < n; ++r) {
    double row_sum = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      a(r, c) = tcw::sim::uniform(rng, -1.0, 1.0);
      row_sum += std::abs(a(r, c));
    }
    a(r, r) += row_sum + 1.0;  // diagonal dominance: well conditioned
    b[r] = tcw::sim::uniform(rng, -10.0, 10.0);
  }
  const auto x = solve(a, b);
  ASSERT_TRUE(x.has_value());
  const Vector r = tcw::linalg::subtract(a * *x, b);
  EXPECT_LT(tcw::linalg::norm_inf(r), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, LuRandomTest, ::testing::Range(0, 10));

}  // namespace
