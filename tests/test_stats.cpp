#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/contract.hpp"

namespace {

using tcw::sim::RatioCounter;
using tcw::sim::RunningStats;
using tcw::sim::TimeWeightedStats;

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownSmallSample) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum sq dev = 32 -> 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, NumericallyStableForShiftedData) {
  RunningStats s;
  const double big = 1e9;
  for (const double x : {big + 1.0, big + 2.0, big + 3.0}) s.add(x);
  EXPECT_NEAR(s.mean(), big + 2.0, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a;
  RunningStats b;
  b.add(1.0);
  b.add(3.0);
  a.merge(b);  // empty.merge(full)
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  RunningStats c;
  a.merge(c);  // full.merge(empty)
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  EXPECT_EQ(a.count(), 2u);
}

TEST(RunningStats, CiShrinksWithSamples) {
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 10; ++i) small.add(i % 3);
  for (int i = 0; i < 1000; ++i) large.add(i % 3);
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(TimeWeighted, ConstantSignal) {
  TimeWeightedStats tw(0.0);
  tw.update(0.0, 3.0);
  EXPECT_DOUBLE_EQ(tw.time_average(10.0), 3.0);
}

TEST(TimeWeighted, StepSignal) {
  TimeWeightedStats tw(0.0);
  tw.update(0.0, 0.0);
  tw.update(5.0, 10.0);  // value 0 for [0,5), then 10
  EXPECT_DOUBLE_EQ(tw.time_average(10.0), 5.0);
}

TEST(TimeWeighted, QueueLengthStyle) {
  TimeWeightedStats tw(0.0);
  tw.update(0.0, 1.0);
  tw.update(2.0, 2.0);
  tw.update(3.0, 0.0);
  // avg over [0,4): (1*2 + 2*1 + 0*1)/4 = 1.0
  EXPECT_DOUBLE_EQ(tw.time_average(4.0), 1.0);
}

TEST(TimeWeighted, BackwardTimeRejected) {
  TimeWeightedStats tw(5.0);
  tw.update(6.0, 1.0);
  EXPECT_THROW(tw.update(5.5, 2.0), tcw::ContractViolation);
}

TEST(RatioCounter, Basics) {
  RatioCounter rc;
  EXPECT_DOUBLE_EQ(rc.ratio(), 0.0);
  rc.add(true);
  rc.add(false);
  rc.add(false);
  rc.add(true);
  EXPECT_EQ(rc.hits(), 2u);
  EXPECT_EQ(rc.total(), 4u);
  EXPECT_DOUBLE_EQ(rc.ratio(), 0.5);
}

TEST(RatioCounter, CiBehaves) {
  RatioCounter rc;
  for (int i = 0; i < 10000; ++i) rc.add(i % 4 == 0);
  EXPECT_NEAR(rc.ratio(), 0.25, 1e-9);
  // 1.96 * sqrt(p(1-p)/n)
  EXPECT_NEAR(rc.ci95_halfwidth(),
              1.96 * std::sqrt(0.25 * 0.75 / 10000.0), 1e-4);
}

}  // namespace
