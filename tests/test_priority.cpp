#include "net/priority.hpp"

#include <gtest/gtest.h>

#include "util/contract.hpp"

namespace {

using tcw::net::PriorityClassSpec;
using tcw::net::PriorityConfig;
using tcw::net::PrioritySimulator;

PriorityConfig two_class_config(std::uint32_t w_high, std::uint32_t w_low) {
  PriorityConfig cfg;
  PriorityClassSpec high;
  high.deadline = 60.0;
  high.arrival_rate = 0.012;
  high.weight = w_high;
  PriorityClassSpec low;
  low.deadline = 300.0;
  low.arrival_rate = 0.012;
  low.weight = w_low;
  cfg.classes = {high, low};
  cfg.message_length = 25.0;
  cfg.t_end = 120000.0;
  cfg.warmup = 8000.0;
  cfg.seed = 17;
  return cfg;
}

TEST(Priority, RequiresClasses) {
  PriorityConfig cfg;
  EXPECT_THROW(PrioritySimulator sim(cfg), tcw::ContractViolation);
}

TEST(Priority, PerClassConservation) {
  PrioritySimulator sim(two_class_config(2, 1));
  const auto& metrics = sim.run();
  ASSERT_EQ(metrics.size(), 2u);
  for (const auto& m : metrics) {
    EXPECT_EQ(m.arrivals, m.delivered + m.lost_sender + m.lost_receiver +
                              m.censored_lost + m.pending_at_end);
    EXPECT_GT(m.arrivals, 100u);
  }
}

TEST(Priority, DeterministicForSeed) {
  PrioritySimulator a(two_class_config(2, 1));
  PrioritySimulator b(two_class_config(2, 1));
  const auto& ma = a.run();
  const auto& mb = b.run();
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_EQ(ma[c].delivered, mb[c].delivered);
    EXPECT_EQ(ma[c].lost_sender, mb[c].lost_sender);
  }
}

TEST(Priority, DeliveredRespectClassDeadlines) {
  PrioritySimulator sim(two_class_config(2, 1));
  const auto& metrics = sim.run();
  EXPECT_LE(metrics[0].wait_delivered.max(), 60.0);
  EXPECT_LE(metrics[1].wait_delivered.max(), 300.0);
}

TEST(Priority, MoreWeightMeansLessLossForTightClass) {
  // Same workload; give the tight-deadline class 1x vs 4x the service
  // share and compare its loss.
  PrioritySimulator starved(two_class_config(1, 4));
  PrioritySimulator favored(two_class_config(4, 1));
  const double starved_loss = starved.run()[0].p_loss();
  const double favored_loss = favored.run()[0].p_loss();
  EXPECT_LT(favored_loss, starved_loss + 1e-9);
}

TEST(Priority, FavoringOneClassCostsTheOther) {
  PrioritySimulator balanced(two_class_config(1, 1));
  PrioritySimulator skewed(two_class_config(6, 1));
  const auto& mb = balanced.run();
  const auto& ms = skewed.run();
  // The low-priority class should do no better under skew.
  EXPECT_GE(ms[1].p_loss(), mb[1].p_loss() - 0.02);
}

TEST(Priority, SingleClassMatchesBaseProtocolShape) {
  PriorityConfig cfg;
  PriorityClassSpec only;
  only.deadline = 75.0;
  only.arrival_rate = 0.02;
  cfg.classes = {only};
  cfg.t_end = 120000.0;
  cfg.warmup = 8000.0;
  PrioritySimulator sim(cfg);
  const auto& metrics = sim.run();
  // rho' = 0.5, K = 3M: loss should be small but nonzero.
  EXPECT_GT(metrics[0].p_loss(), 0.0);
  EXPECT_LT(metrics[0].p_loss(), 0.1);
}

TEST(Priority, ThreeClassesRun) {
  PriorityConfig cfg;
  for (const double k : {50.0, 150.0, 600.0}) {
    PriorityClassSpec spec;
    spec.deadline = k;
    spec.arrival_rate = 0.006;
    spec.weight = k < 100.0 ? 2u : 1u;
    cfg.classes.push_back(spec);
  }
  cfg.t_end = 80000.0;
  cfg.warmup = 5000.0;
  PrioritySimulator sim(cfg);
  const auto& metrics = sim.run();
  ASSERT_EQ(metrics.size(), 3u);
  std::uint64_t total = 0;
  for (const auto& m : metrics) total += m.decided();
  EXPECT_GT(total, 500u);
}

TEST(Priority, RunTwiceRejected) {
  PrioritySimulator sim(two_class_config(1, 1));
  sim.run();
  EXPECT_THROW(sim.run(), tcw::ContractViolation);
}

TEST(Priority, MetricsForBoundsChecked) {
  PrioritySimulator sim(two_class_config(1, 1));
  sim.run();
  EXPECT_THROW(sim.metrics_for(2), tcw::ContractViolation);
}

}  // namespace
