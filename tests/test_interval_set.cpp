#include "util/interval_set.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/rng.hpp"
#include "sim/sampling.hpp"
#include "util/contract.hpp"

namespace {

using tcw::Interval;
using tcw::IntervalSet;

TEST(Interval, Basics) {
  const Interval iv{1.0, 3.0};
  EXPECT_DOUBLE_EQ(iv.length(), 2.0);
  EXPECT_FALSE(iv.empty());
  EXPECT_TRUE(iv.contains(1.0));
  EXPECT_TRUE(iv.contains(2.9));
  EXPECT_FALSE(iv.contains(3.0));  // half-open
  EXPECT_FALSE(iv.contains(0.99));
}

TEST(IntervalSet, StartsEmpty) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.total_measure(), 0.0);
  EXPECT_FALSE(s.contains(0.0));
  EXPECT_DOUBLE_EQ(s.first_uncovered(5.0), 5.0);
}

TEST(IntervalSet, InsertDisjoint) {
  IntervalSet s;
  s.insert(0.0, 1.0);
  s.insert(2.0, 3.0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(0.5));
  EXPECT_FALSE(s.contains(1.5));
  EXPECT_TRUE(s.contains(2.0));
  EXPECT_TRUE(s.check_invariant());
}

TEST(IntervalSet, InsertMergesOverlaps) {
  IntervalSet s;
  s.insert(0.0, 2.0);
  s.insert(1.0, 3.0);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.total_measure(), 3.0);
}

TEST(IntervalSet, InsertMergesAdjacent) {
  IntervalSet s;
  s.insert(0.0, 1.0);
  s.insert(1.0, 2.0);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.total_measure(), 2.0);
  EXPECT_DOUBLE_EQ(s.first_uncovered(0.0), 2.0);
}

TEST(IntervalSet, InsertBridgesManyParts) {
  IntervalSet s;
  s.insert(0.0, 1.0);
  s.insert(2.0, 3.0);
  s.insert(4.0, 5.0);
  s.insert(0.5, 4.5);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.total_measure(), 5.0);
}

TEST(IntervalSet, EmptyInsertIsNoop) {
  IntervalSet s;
  s.insert(1.0, 1.0);
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, EraseSplitsInterval) {
  IntervalSet s;
  s.insert(0.0, 10.0);
  s.erase(3.0, 7.0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(2.9));
  EXPECT_FALSE(s.contains(3.0));
  EXPECT_FALSE(s.contains(6.9));
  EXPECT_TRUE(s.contains(7.0));
  EXPECT_DOUBLE_EQ(s.total_measure(), 6.0);
}

TEST(IntervalSet, EraseBelowTrims) {
  IntervalSet s;
  s.insert(0.0, 2.0);
  s.insert(3.0, 5.0);
  s.erase_below(4.0);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.total_measure(), 1.0);
  EXPECT_TRUE(s.contains(4.5));
}

TEST(IntervalSet, MeasureWithinRange) {
  IntervalSet s;
  s.insert(0.0, 2.0);
  s.insert(3.0, 5.0);
  EXPECT_DOUBLE_EQ(s.measure(1.0, 4.0), 2.0);  // [1,2) + [3,4)
  EXPECT_DOUBLE_EQ(s.measure(-5.0, 10.0), 4.0);
  EXPECT_DOUBLE_EQ(s.measure(2.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(s.measure(4.0, 4.0), 0.0);
}

TEST(IntervalSet, FirstUncoveredWalksThroughParts) {
  IntervalSet s;
  s.insert(0.0, 2.0);
  s.insert(2.0, 4.0);  // merges
  s.insert(5.0, 6.0);
  EXPECT_DOUBLE_EQ(s.first_uncovered(0.0), 4.0);
  EXPECT_DOUBLE_EQ(s.first_uncovered(4.5), 4.5);
  EXPECT_DOUBLE_EQ(s.first_uncovered(5.0), 6.0);
  EXPECT_DOUBLE_EQ(s.first_uncovered(7.0), 7.0);
}

TEST(IntervalSet, GapsWithinRange) {
  IntervalSet s;
  s.insert(1.0, 2.0);
  s.insert(3.0, 4.0);
  const auto gaps = s.gaps(0.0, 5.0);
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_EQ(gaps[0], (Interval{0.0, 1.0}));
  EXPECT_EQ(gaps[1], (Interval{2.0, 3.0}));
  EXPECT_EQ(gaps[2], (Interval{4.0, 5.0}));
}

TEST(IntervalSet, GapsOfEmptySetIsWholeRange) {
  IntervalSet s;
  const auto gaps = s.gaps(2.0, 7.0);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0], (Interval{2.0, 7.0}));
}

TEST(IntervalSet, GapsOfFullyCoveredRangeIsEmpty) {
  IntervalSet s;
  s.insert(0.0, 10.0);
  EXPECT_TRUE(s.gaps(2.0, 7.0).empty());
}

TEST(IntervalSet, MaxCovered) {
  IntervalSet s;
  EXPECT_FALSE(s.max_covered().has_value());
  s.insert(1.0, 2.0);
  s.insert(5.0, 8.0);
  EXPECT_DOUBLE_EQ(s.max_covered().value(), 8.0);
}

TEST(IntervalSet, BackwardsIntervalRejected) {
  IntervalSet s;
  EXPECT_THROW(s.insert(2.0, 1.0), tcw::ContractViolation);
  EXPECT_THROW(s.erase(2.0, 1.0), tcw::ContractViolation);
}

// ---------------------------------------------------------------------------
// Property test: a random operation sequence agrees with a brute-force
// boolean-grid model, and the structural invariant always holds.
// ---------------------------------------------------------------------------

class IntervalSetPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(IntervalSetPropertyTest, MatchesBruteForceModel) {
  // Model: cover [0, 200) at resolution 0.5 => 400 cells.
  constexpr int kCells = 400;
  constexpr double kRes = 0.5;
  std::vector<bool> model(kCells, false);
  IntervalSet s;
  tcw::sim::Rng rng(0xABCD + static_cast<unsigned>(GetParam()));

  for (int op = 0; op < 300; ++op) {
    const auto a = static_cast<double>(tcw::sim::uniform_index(rng, kCells));
    const auto len = static_cast<double>(tcw::sim::uniform_index(rng, 60));
    const double lo = a * kRes;
    const double hi = std::min(lo + len * kRes, kCells * kRes);
    const bool insert = tcw::sim::bernoulli(rng, 0.6);
    if (insert) {
      s.insert(lo, hi);
    } else {
      s.erase(lo, hi);
    }
    for (int c = static_cast<int>(lo / kRes); c < static_cast<int>(hi / kRes);
         ++c) {
      model[static_cast<std::size_t>(c)] = insert;
    }
    ASSERT_TRUE(s.check_invariant());
  }

  // Compare membership at cell midpoints and aggregate measure.
  double model_measure = 0.0;
  for (int c = 0; c < kCells; ++c) {
    const double mid = (c + 0.5) * kRes;
    EXPECT_EQ(s.contains(mid), model[static_cast<std::size_t>(c)])
        << "cell " << c;
    if (model[static_cast<std::size_t>(c)]) model_measure += kRes;
  }
  EXPECT_NEAR(s.total_measure(), model_measure, 1e-9);

  // first_uncovered agrees with a scan over the model.
  for (double x : {0.0, 10.25, 100.0, 199.75}) {
    int cell = static_cast<int>(x / kRes);
    double expect = x;
    while (cell < kCells && model[static_cast<std::size_t>(cell)] &&
           expect >= cell * kRes) {
      expect = (cell + 1) * kRes;
      ++cell;
    }
    EXPECT_DOUBLE_EQ(s.first_uncovered(x), expect) << "x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, IntervalSetPropertyTest,
                         ::testing::Range(0, 8));

}  // namespace
