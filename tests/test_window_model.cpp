#include "smdp/window_model.hpp"

#include <gtest/gtest.h>

#include "smdp/value_iteration.hpp"
#include "util/contract.hpp"

namespace {

namespace smdp = tcw::smdp;

smdp::WindowSmdpConfig small_config() {
  smdp::WindowSmdpConfig cfg;
  cfg.deadline = 12;
  cfg.lambda = 0.1;
  cfg.tx_slots = 4;
  cfg.mc_samples = 4000;
  cfg.seed = 42;
  return cfg;
}

TEST(WindowSmdp, ModelIsWellFormed) {
  const auto model = smdp::build_window_smdp(small_config());
  EXPECT_EQ(model.num_states(), 13u);
  EXPECT_TRUE(model.validate(1e-6));
  // State 0 only waits; state i offers i windows plus wait.
  EXPECT_EQ(model.num_actions(0), 1u);
  EXPECT_EQ(model.num_actions(5), 6u);
  EXPECT_EQ(model.num_actions(12), 13u);
}

TEST(WindowSmdp, MaxWindowCapRespected) {
  auto cfg = small_config();
  cfg.max_window = 3;
  const auto model = smdp::build_window_smdp(cfg);
  EXPECT_EQ(model.num_actions(12), 4u);  // wait + widths 1..3
}

TEST(WindowSmdp, WaitActionStructure) {
  const auto model = smdp::build_window_smdp(small_config());
  const auto& wait = model.action(3, 0);
  EXPECT_EQ(wait.label, "wait");
  EXPECT_DOUBLE_EQ(wait.holding, 1.0);
  ASSERT_EQ(wait.transitions.size(), 1u);
  EXPECT_EQ(wait.transitions[0].next, 4u);
  EXPECT_DOUBLE_EQ(wait.cost, 0.0);
  // At the deadline boundary waiting sheds one slot of arrivals.
  const auto& edge = model.action(12, 0);
  EXPECT_DOUBLE_EQ(edge.cost, small_config().lambda);
  EXPECT_EQ(edge.transitions[0].next, 12u);
}

TEST(WindowSmdp, KernelIsDeterministicGivenSeed) {
  const auto a = smdp::build_window_smdp(small_config());
  const auto b = smdp::build_window_smdp(small_config());
  for (std::size_t s = 0; s < a.num_states(); ++s) {
    ASSERT_EQ(a.num_actions(s), b.num_actions(s));
    for (std::size_t act = 0; act < a.num_actions(s); ++act) {
      EXPECT_DOUBLE_EQ(a.action(s, act).cost, b.action(s, act).cost);
      EXPECT_DOUBLE_EQ(a.action(s, act).holding, b.action(s, act).holding);
    }
  }
}

TEST(WindowSmdp, SolveProducesSensiblePolicy) {
  const auto result = smdp::solve_window_model(small_config());
  EXPECT_TRUE(result.stats.converged);
  EXPECT_GE(result.loss_fraction, 0.0);
  EXPECT_LE(result.loss_fraction, 1.0);
  // The empty state can only wait.
  EXPECT_EQ(result.width_per_state[0], 0u);
  // With backlog present, some window should be probed somewhere.
  bool probes_somewhere = false;
  for (std::size_t i = 1; i < result.width_per_state.size(); ++i) {
    if (result.width_per_state[i] > 0) probes_somewhere = true;
    EXPECT_LE(result.width_per_state[i], i);
  }
  EXPECT_TRUE(probes_somewhere);
}

TEST(WindowSmdp, HigherLoadLosesMore) {
  auto low = small_config();
  low.lambda = 0.06;
  auto high = small_config();
  high.lambda = 0.2;
  const auto l = smdp::solve_window_model(low);
  const auto h = smdp::solve_window_model(high);
  EXPECT_GE(h.loss_fraction, l.loss_fraction);
}

TEST(WindowSmdp, LongerDeadlineLosesLess) {
  auto short_k = small_config();
  short_k.deadline = 8;
  auto long_k = small_config();
  long_k.deadline = 20;
  const auto s = smdp::solve_window_model(short_k);
  const auto l = smdp::solve_window_model(long_k);
  EXPECT_LE(l.loss_fraction, s.loss_fraction + 0.01);
}

TEST(WindowSmdp, ValueIterationAgreesOnGain) {
  const auto cfg = small_config();
  const auto model = smdp::build_window_smdp(cfg);
  const auto pi = smdp::policy_iteration(model);
  const auto vi = smdp::value_iteration(model, 1e-8, 500000);
  EXPECT_NEAR(vi.gain, pi.eval.gain, 1e-4);
}

TEST(WindowSmdp, StateActionCountGrowsQuadratically) {
  // The "computationally too expensive" observation: (K+1)(K+2)/2 + K
  // state-action pairs, each needing a kernel estimate, and each policy
  // evaluation solving a (K+1)x(K+1) linear system.
  auto cfg = small_config();
  cfg.deadline = 8;
  cfg.mc_samples = 500;
  const auto small_model = smdp::build_window_smdp(cfg);
  cfg.deadline = 16;
  const auto big_model = smdp::build_window_smdp(cfg);
  EXPECT_GT(big_model.num_state_actions(),
            3u * small_model.num_state_actions());
}

TEST(WindowSmdp, InvalidConfigurationRejected) {
  auto cfg = small_config();
  cfg.lambda = 0.0;
  EXPECT_THROW(smdp::build_window_smdp(cfg), tcw::ContractViolation);
  cfg = small_config();
  cfg.mc_samples = 10;
  EXPECT_THROW(smdp::build_window_smdp(cfg), tcw::ContractViolation);
  cfg = small_config();
  cfg.deadline = 0;
  EXPECT_THROW(smdp::build_window_smdp(cfg), tcw::ContractViolation);
}

}  // namespace
