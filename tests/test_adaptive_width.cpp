// The adaptive element-(2) table (ControlPolicy::width_table) and the
// slot-jitter robustness knob.
#include <gtest/gtest.h>

#include <memory>

#include "core/controller.hpp"
#include "net/aggregate_sim.hpp"
#include "net/experiment.hpp"
#include "smdp/window_model.hpp"
#include "util/contract.hpp"

namespace {

using tcw::core::ControlPolicy;
using tcw::core::Feedback;
using tcw::core::WindowController;

TEST(WidthTable, LookupByBacklog) {
  ControlPolicy policy = ControlPolicy::optimal(100.0, 50.0);
  policy.width_table = {0.0, 1.0, 2.0, 3.0};  // width = backlog, capped
  WindowController c(policy);
  // At now = 2, pseudo backlog = 2 -> width 2.
  const auto w = c.next_probe(2.0);
  ASSERT_TRUE(w.has_value());
  EXPECT_DOUBLE_EQ(w->length(), 2.0);
}

TEST(WidthTable, ClampsToLastEntry) {
  ControlPolicy policy = ControlPolicy::optimal(100.0, 50.0);
  policy.width_table = {0.0, 1.0, 2.0, 3.0};
  WindowController c(policy);
  // Backlog far beyond the table end: use the last entry.
  const auto w = c.next_probe(80.0);
  ASSERT_TRUE(w.has_value());
  EXPECT_DOUBLE_EQ(w->length(), 3.0);
}

TEST(WidthTable, ZeroEntryMeansWait) {
  ControlPolicy policy = ControlPolicy::optimal(100.0, 50.0);
  policy.width_table = {0.0, 0.0, 5.0};
  WindowController c(policy);
  // Backlog ~1 -> table entry 0 -> no probe this slot.
  EXPECT_FALSE(c.next_probe(1.0).has_value());
  EXPECT_FALSE(c.in_process());
  // Backlog ~2 -> width 5 (clipped at now).
  const auto w = c.next_probe(2.0);
  ASSERT_TRUE(w.has_value());
  EXPECT_DOUBLE_EQ(w->length(), 2.0);  // clipped to available past
}

TEST(WidthTable, TerminalZeroFallsBackUnderSaturation) {
  // A backlog clamped past the table end must never wait on a terminal 0:
  // the saturated controller would spin forever while backlog only grows.
  // It falls back to the deepest positive entry instead.
  ControlPolicy policy = ControlPolicy::optimal(100.0, 50.0);
  policy.width_table = {0.0, 3.0, 0.0};
  WindowController c(policy);
  // Backlog ~2 (the exact terminal index): in-range 0 still means wait.
  EXPECT_FALSE(c.next_probe(2.0).has_value());
  // Backlog ~80, clamped onto the terminal 0: fall back to width 3.
  const auto w = c.next_probe(80.0);
  ASSERT_TRUE(w.has_value());
  EXPECT_DOUBLE_EQ(w->length(), 3.0);
}

TEST(WidthTable, AllNonpositiveTableRejected) {
  // A table that can never open a window is a configuration bug; reject
  // it at construction instead of idling forever.
  ControlPolicy policy = ControlPolicy::optimal(100.0, 50.0);
  policy.width_table = {0.0, 0.0, 0.0};
  EXPECT_THROW(WindowController c(policy), tcw::ContractViolation);
}

TEST(WidthTable, EmptyTableUsesFixedWidth) {
  ControlPolicy policy = ControlPolicy::optimal(100.0, 7.0);
  WindowController c(policy);
  const auto w = c.next_probe(50.0);
  ASSERT_TRUE(w.has_value());
  EXPECT_DOUBLE_EQ(w->length(), 7.0);
}

TEST(WidthTable, SmdpTableRunsEndToEnd) {
  // Deploy a solved SMDP table in the simulator; conservation must hold
  // and loss must stay sane.
  tcw::smdp::WindowSmdpConfig wcfg;
  wcfg.deadline = 16;
  wcfg.lambda = 0.1;
  wcfg.tx_slots = 5;
  wcfg.mc_samples = 2000;
  const auto solved = tcw::smdp::solve_window_model(wcfg);

  tcw::net::AggregateConfig cfg;
  cfg.policy = ControlPolicy::optimal(16.0, 10.0);
  cfg.policy.width_table.assign(solved.width_per_state.begin(),
                                solved.width_per_state.end());
  cfg.message_length = 4.0;
  cfg.t_end = 60000.0;
  cfg.warmup = 4000.0;
  tcw::net::AggregateSimulator sim(
      cfg, std::make_unique<tcw::chan::PoissonProcess>(0.1));
  const auto& m = sim.run();
  EXPECT_EQ(m.arrivals, m.delivered + m.lost_sender + m.lost_receiver +
                            m.censored_lost + m.pending_at_end);
  EXPECT_GT(m.delivered, 0u);
  EXPECT_LT(m.p_loss(), 0.5);
}

TEST(WidthTable, AdaptiveBeatsOrMatchesStaticAtTightDeadline) {
  tcw::smdp::WindowSmdpConfig wcfg;
  wcfg.deadline = 24;
  wcfg.lambda = 0.12;
  wcfg.tx_slots = 5;
  wcfg.mc_samples = 4000;
  const auto solved = tcw::smdp::solve_window_model(wcfg);

  tcw::net::SweepConfig cfg;
  cfg.offered_load = 0.48;
  cfg.message_length = 4.0;
  cfg.t_end = 150000.0;
  cfg.warmup = 10000.0;
  cfg.replications = 2;
  const double width = cfg.heuristic_window_width();

  const double static_loss =
      tcw::net::run_sweep(
              {.config = cfg,
               .constraints = {24.0},
               .make_policy =
                   [width](double k) { return ControlPolicy::optimal(k, width); }})
          .points()[0]
          .p_loss;
  const double adaptive_loss =
      tcw::net::run_sweep({.config = cfg,
                           .constraints = {24.0},
                           .make_policy =
                               [&](double k) {
                                 auto p = ControlPolicy::optimal(k, width);
                                 p.width_table.assign(
                                     solved.width_per_state.begin(),
                                     solved.width_per_state.end());
                                 return p;
                               }})
          .points()[0]
          .p_loss;
  EXPECT_LE(adaptive_loss, static_loss + 0.015);
}

TEST(SlotJitter, ZeroJitterUnchanged) {
  tcw::net::AggregateConfig a;
  a.policy = ControlPolicy::optimal(75.0, 54.0);
  a.message_length = 25.0;
  a.t_end = 30000.0;
  a.warmup = 2000.0;
  auto b = a;
  b.slot_jitter = 0.0;
  tcw::net::AggregateSimulator sa(
      a, std::make_unique<tcw::chan::PoissonProcess>(0.02));
  tcw::net::AggregateSimulator sb(
      b, std::make_unique<tcw::chan::PoissonProcess>(0.02));
  EXPECT_DOUBLE_EQ(sa.run().wait_all.mean(), sb.run().wait_all.mean());
}

TEST(SlotJitter, LargeJitterDegradesLoss) {
  const auto run_with = [](double jitter) {
    tcw::net::AggregateConfig cfg;
    cfg.policy = ControlPolicy::optimal(75.0, 54.0);
    cfg.message_length = 25.0;
    cfg.t_end = 80000.0;
    cfg.warmup = 5000.0;
    cfg.slot_jitter = jitter;
    tcw::net::AggregateSimulator sim(
        cfg, std::make_unique<tcw::chan::PoissonProcess>(0.02));
    return sim.run().p_loss();
  };
  // A 4-slot jitter stretches every transmission ~8%: loss must rise.
  EXPECT_GT(run_with(4.0), run_with(0.0));
}

TEST(SlotJitter, NegativeJitterRejected) {
  tcw::net::AggregateConfig cfg;
  cfg.policy = ControlPolicy::optimal(75.0, 54.0);
  cfg.slot_jitter = -1.0;
  EXPECT_THROW(tcw::net::AggregateSimulator sim(
                   cfg, std::make_unique<tcw::chan::PoissonProcess>(0.02)),
               tcw::ContractViolation);
}

TEST(WaitQuantiles, OrderedAndWithinRange) {
  tcw::net::AggregateConfig cfg;
  cfg.policy = ControlPolicy::optimal(200.0, 54.0);
  cfg.message_length = 25.0;
  cfg.t_end = 120000.0;
  cfg.warmup = 5000.0;
  tcw::net::AggregateSimulator sim(
      cfg, std::make_unique<tcw::chan::PoissonProcess>(0.02));
  const auto& m = sim.run();
  EXPECT_LE(m.wait_p50.value(), m.wait_p90.value() + 1e-9);
  EXPECT_LE(m.wait_p90.value(), m.wait_p99.value() + 1e-9);
  EXPECT_GE(m.wait_p50.value(), 0.0);
  EXPECT_LE(m.wait_p99.value(), m.wait_all.max() + 1e-9);
  // Median should be near the arithmetic mean's ballpark for this load.
  EXPECT_LT(m.wait_p50.value(), m.wait_all.mean() * 3.0 + 1.0);
}

}  // namespace
