#include "chan/channel.hpp"

#include <gtest/gtest.h>

namespace {

using tcw::chan::ChannelUsage;
using tcw::chan::outcome_for_transmitters;
using tcw::chan::SlotOutcome;

TEST(Outcome, MapsTransmitterCounts) {
  EXPECT_EQ(outcome_for_transmitters(0), SlotOutcome::Idle);
  EXPECT_EQ(outcome_for_transmitters(1), SlotOutcome::Success);
  EXPECT_EQ(outcome_for_transmitters(2), SlotOutcome::Collision);
  EXPECT_EQ(outcome_for_transmitters(100), SlotOutcome::Collision);
}

TEST(ChannelUsage, StartsZeroed) {
  ChannelUsage u;
  EXPECT_DOUBLE_EQ(u.total_slots(), 0.0);
  EXPECT_DOUBLE_EQ(u.utilization(), 0.0);
  EXPECT_EQ(u.messages_carried(), 0u);
}

TEST(ChannelUsage, AccumulatesByKind) {
  ChannelUsage u;
  u.add_idle_slot();
  u.add_idle_slot();
  u.add_collision_slot();
  u.add_success(25.0, 1.0);
  EXPECT_DOUBLE_EQ(u.idle_slots(), 2.0);
  EXPECT_DOUBLE_EQ(u.collision_slots(), 1.0);
  EXPECT_DOUBLE_EQ(u.payload_slots(), 25.0);
  EXPECT_DOUBLE_EQ(u.success_overhead_slots(), 1.0);
  EXPECT_EQ(u.messages_carried(), 1u);
  EXPECT_DOUBLE_EQ(u.total_slots(), 29.0);
}

TEST(ChannelUsage, UtilizationIsPayloadFraction) {
  ChannelUsage u;
  u.add_success(8.0, 2.0);
  u.add_idle_slot();
  u.add_idle_slot();
  // payload 8 of total 12.
  EXPECT_DOUBLE_EQ(u.utilization(), 8.0 / 12.0);
}

TEST(ChannelUsage, MultipleSuccesses) {
  ChannelUsage u;
  u.add_success(10.0, 1.0);
  u.add_success(10.0, 1.0);
  EXPECT_EQ(u.messages_carried(), 2u);
  EXPECT_DOUBLE_EQ(u.payload_slots(), 20.0);
}

}  // namespace
