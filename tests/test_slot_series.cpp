// The windowed per-slot time series and the deadline-loss attribution
// invariant. The hard guarantees under test:
//   * add_idle_run (the event-skip kernel's closed-form synthesis for a
//     quiescent stretch) is bit-identical to the equivalent sequence of
//     per-slot add_idle calls, including across bucket boundaries;
//   * attaching a capture to a kernel perturbs nothing (strict overlay);
//   * per-slot and event-skip network runs render identical series rows;
//   * every engine's ChannelTally attribution categories sum exactly to
//     its sender discards.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/splitting.hpp"
#include "chan/arrivals.hpp"
#include "net/aggregate_sim.hpp"
#include "net/network.hpp"
#include "obs/capture.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/slot_series.hpp"

namespace tcw {
namespace {

using obs::SlotSeries;

// ------------------------------------------------------- bucket math

TEST(SlotSeries, IdleRunMatchesPerSlotIdlesAcrossBucketBoundaries) {
  // Runs that start mid-bucket, span several buckets, and end mid-bucket
  // must render exactly like the per-slot loop.
  for (const std::uint64_t bucket_slots : {1u, 4u, 256u}) {
    for (const std::uint64_t start : {0u, 3u, 255u}) {
      for (const std::uint64_t n : {1u, 5u, 1000u}) {
        SlotSeries per_slot(bucket_slots);
        SlotSeries run(bucket_slots);
        for (std::uint64_t i = 0; i < n; ++i) {
          per_slot.add_idle(static_cast<double>(start + i), 2.5);
        }
        run.add_idle_run(static_cast<double>(start), n, 2.5);
        EXPECT_EQ(run.to_csv_rows("x"), per_slot.to_csv_rows("x"))
            << "bucket_slots=" << bucket_slots << " start=" << start
            << " n=" << n;
      }
    }
  }
}

TEST(SlotSeries, BacklogSampleLatestSlotWins) {
  SlotSeries series(16);
  series.add_idle(3.0, 10.0);
  series.add_idle(7.0, 20.0);   // later slot in the same bucket wins
  series.add_idle(21.0, 30.0);  // next bucket samples independently
  const std::string rows = series.to_csv_rows("t");
  // Columns: ...,backlog,backlog_t -- bucket 0 keeps (20, 7).
  EXPECT_NE(rows.find(",20,7\n"), std::string::npos) << rows;
  EXPECT_NE(rows.find(",30,21\n"), std::string::npos) << rows;
}

TEST(SlotSeries, HeaderAndRowsRenderAllColumns) {
  SlotSeries series(8);
  series.add_arrival(1.0, 12.0);
  series.add_success(2.0, 3.0, 1.0);
  series.add_collision(3.0, 2.0);
  series.add_discard(4.0);
  const std::string header = SlotSeries::csv_header();
  EXPECT_EQ(header.find("tag,bucket,t0,idle,success,collision"), 0u);
  const std::string rows = series.to_csv_rows("mytag");
  EXPECT_EQ(rows.find("mytag,0,0,0,1,1,1,1,"), 0u) << rows;
  // One laxity-histogram sample from the success at laxity 3 (bin <=4).
  EXPECT_EQ(series.bucket_count(), 1u);
}

TEST(SlotSeries, EmptySeriesRendersNoRows) {
  SlotSeries series;
  EXPECT_EQ(series.to_csv_rows("x"), "");
  EXPECT_EQ(series.bucket_count(), 0u);
}

// --------------------------------------------- kernels + attribution

net::AggregateConfig aggregate_config(net::EngineKind kind, double* lambda) {
  const double message_length = 25.0;
  const double rho = 0.7;
  const double k = 2.0 * message_length;
  *lambda = rho / message_length;
  net::AggregateConfig cfg;
  cfg.policy = core::ControlPolicy::optimal(
      k, analysis::optimal_window_load() / *lambda);
  cfg.mac.engine.kind = kind;
  if (kind == net::EngineKind::DynamicAloha) {
    cfg.mac.engine.arrival_rate = *lambda;
  }
  cfg.message_length = message_length;
  cfg.t_end = 20000.0;
  cfg.warmup = 2000.0;
  cfg.seed = 20261983u;
  return cfg;
}

const net::EngineKind kEngines[] = {net::EngineKind::Window,
                                    net::EngineKind::SlottedAloha,
                                    net::EngineKind::DynamicAloha};

TEST(SlotSeries, CaptureIsStrictOverlayOnAggregateKernel) {
  for (const net::EngineKind kind : kEngines) {
    double lambda = 0.0;
    net::AggregateConfig plain_cfg = aggregate_config(kind, &lambda);
    net::AggregateSimulator plain(
        plain_cfg, std::make_unique<chan::PoissonProcess>(lambda));
    const net::SimMetrics base = plain.run();

    obs::FlightRecorder recorder({plain_cfg.seed, 1.0, 4096});
    SlotSeries series;
    net::AggregateConfig cfg = aggregate_config(kind, &lambda);
    cfg.capture.flight = recorder.segment("run");
    cfg.capture.series = &series;
    net::AggregateSimulator captured(
        cfg, std::make_unique<chan::PoissonProcess>(lambda));
    const net::SimMetrics with = captured.run();

    EXPECT_EQ(with.arrivals, base.arrivals) << to_string(kind);
    EXPECT_EQ(with.delivered, base.delivered) << to_string(kind);
    EXPECT_EQ(with.lost_sender, base.lost_sender) << to_string(kind);
    EXPECT_EQ(with.wait_all.sum(), base.wait_all.sum()) << to_string(kind);
    // The capture actually observed the run.
    EXPECT_GT(series.bucket_count(), 0u) << to_string(kind);
    EXPECT_GT(recorder.segment("run")->total(), 0u) << to_string(kind);
  }
}

TEST(SlotSeries, EventSkipAndPerSlotNetworkRenderIdenticalRows) {
  for (const net::EngineKind kind : kEngines) {
    const double lambda = 0.5 / 25.0;
    net::NetworkConfig cfg;
    cfg.policy = core::ControlPolicy::optimal(
        75.0, analysis::optimal_window_load() / lambda);
    cfg.mac.engine.kind = kind;
    if (kind == net::EngineKind::DynamicAloha) {
      cfg.mac.engine.arrival_rate = lambda;
    }
    cfg.message_length = 25.0;
    cfg.t_end = 20000.0;
    cfg.warmup = 2000.0;
    cfg.seed = 20261983u;

    SlotSeries per_slot_series;
    net::NetworkConfig per_slot_cfg = cfg;
    per_slot_cfg.capture.series = &per_slot_series;
    auto per_slot =
        net::Network::homogeneous_poisson_batched(per_slot_cfg, 10, lambda);
    per_slot.run();

    SlotSeries skip_series;
    net::NetworkConfig skip_cfg = cfg;
    skip_cfg.event_skip = true;
    skip_cfg.capture.series = &skip_series;
    auto skip =
        net::Network::homogeneous_poisson_batched(skip_cfg, 10, lambda);
    skip.run();

    EXPECT_GT(skip.skipped_slots(), 0u) << to_string(kind);
    EXPECT_EQ(skip_series.to_csv_rows("x"), per_slot_series.to_csv_rows("x"))
        << to_string(kind);
  }
}

TEST(SlotSeries, AttributionCategoriesSumToSenderDiscards) {
  // Aggregate kernel, all engines: every discard lands in exactly one
  // category, and a lossy configuration actually produces some.
  for (const net::EngineKind kind : kEngines) {
    double lambda = 0.0;
    net::AggregateConfig cfg = aggregate_config(kind, &lambda);
    net::AggregateSimulator sim(
        cfg, std::make_unique<chan::PoissonProcess>(lambda));
    sim.run();
    std::uint64_t discards = 0;
    for (const obs::ChannelTally& t : sim.channel_tallies()) {
      EXPECT_EQ(t.admission_starved + t.collision_killed + t.queue_expired,
                t.sender_discards)
          << to_string(kind);
      discards += t.sender_discards;
    }
    EXPECT_GT(discards, 0u) << to_string(kind);
  }
}

TEST(SlotSeries, AttributionSumHoldsOnNetworkKernel) {
  for (const net::EngineKind kind : kEngines) {
    const double lambda = 0.9 / 25.0;
    net::NetworkConfig cfg;
    cfg.policy = core::ControlPolicy::optimal(
        50.0, analysis::optimal_window_load() / lambda);
    cfg.mac.engine.kind = kind;
    if (kind == net::EngineKind::DynamicAloha) {
      cfg.mac.engine.arrival_rate = lambda;
    }
    cfg.message_length = 25.0;
    cfg.t_end = 20000.0;
    cfg.warmup = 2000.0;
    cfg.seed = 20261983u;
    auto net = net::Network::homogeneous_poisson(cfg, 20, lambda);
    net.run();
    std::uint64_t discards = 0;
    for (const obs::ChannelTally& t : net.channel_tallies()) {
      EXPECT_EQ(t.admission_starved + t.collision_killed + t.queue_expired,
                t.sender_discards)
          << to_string(kind);
      discards += t.sender_discards;
    }
    EXPECT_GT(discards, 0u) << to_string(kind);
  }
}

}  // namespace
}  // namespace tcw
