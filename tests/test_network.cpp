#include "net/network.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "net/aggregate_sim.hpp"
#include "util/contract.hpp"

namespace {

using tcw::core::ControlPolicy;
using tcw::net::Network;
using tcw::net::NetworkConfig;
using tcw::net::SimMetrics;

NetworkConfig base_config(double deadline, double width) {
  NetworkConfig cfg;
  cfg.policy = ControlPolicy::optimal(deadline, width);
  cfg.message_length = 25.0;
  cfg.t_end = 20000.0;
  cfg.warmup = 1000.0;
  cfg.seed = 3;
  cfg.consistency_check_every = 64;
  return cfg;
}

TEST(Network, RequiresStations) {
  Network net(base_config(100.0, 50.0));
  EXPECT_THROW(net.run(), tcw::ContractViolation);
}

TEST(Network, StationsStayConsistent) {
  auto net = Network::homogeneous_poisson(base_config(100.0, 50.0), 8, 0.02);
  net.run();
  EXPECT_GT(net.consistency_checks_run(), 10u);
  EXPECT_TRUE(net.stations_consistent());
}

TEST(Network, ConsistencyHoldsForEveryPolicyShape) {
  for (const auto policy :
       {ControlPolicy::optimal(80.0, 40.0),
        ControlPolicy::fcfs_baseline(80.0, 40.0),
        ControlPolicy::lcfs_baseline(80.0, 40.0),
        ControlPolicy::random_baseline(80.0, 40.0)}) {
    NetworkConfig cfg = base_config(80.0, 40.0);
    cfg.policy = policy;
    cfg.t_end = 8000.0;
    auto net = Network::homogeneous_poisson(cfg, 5, 0.02);
    net.run();
    EXPECT_TRUE(net.stations_consistent())
        << to_string(policy.position) << "/" << to_string(policy.split);
  }
}

TEST(Network, MessageConservation) {
  auto net = Network::homogeneous_poisson(base_config(100.0, 50.0), 6, 0.02);
  const SimMetrics& m = net.run();
  EXPECT_EQ(m.arrivals, m.delivered + m.lost_sender + m.lost_receiver +
                            m.censored_lost + m.pending_at_end);
}

TEST(Network, DeterministicForSeed) {
  auto a = Network::homogeneous_poisson(base_config(100.0, 50.0), 6, 0.02);
  auto b = Network::homogeneous_poisson(base_config(100.0, 50.0), 6, 0.02);
  const SimMetrics& ma = a.run();
  const SimMetrics& mb = b.run();
  EXPECT_EQ(ma.delivered, mb.delivered);
  EXPECT_DOUBLE_EQ(ma.wait_all.mean(), mb.wait_all.mean());
}

TEST(Network, ManyStationsApproachAggregateModel) {
  // Same workload through the finite-station network and the
  // infinite-population simulator; loss should agree within a few points.
  const double deadline = 80.0;
  const double width = 54.0;
  const double rate = 0.02;  // rho' = 0.5

  NetworkConfig ncfg = base_config(deadline, width);
  ncfg.t_end = 60000.0;
  ncfg.warmup = 3000.0;
  ncfg.consistency_check_every = 0;  // speed
  auto net = Network::homogeneous_poisson(ncfg, 32, rate);
  const double net_loss = net.run().p_loss();

  tcw::net::AggregateConfig acfg;
  acfg.policy = ControlPolicy::optimal(deadline, width);
  acfg.message_length = 25.0;
  acfg.t_end = 60000.0;
  acfg.warmup = 3000.0;
  acfg.seed = 3;
  tcw::net::AggregateSimulator agg(
      acfg, std::make_unique<tcw::chan::PoissonProcess>(rate));
  const double agg_loss = agg.run().p_loss();

  EXPECT_NEAR(net_loss, agg_loss, 0.03);
}

TEST(Network, SingleStationNeverCollides) {
  auto net = Network::homogeneous_poisson(base_config(200.0, 50.0), 1, 0.02);
  const SimMetrics& m = net.run();
  EXPECT_DOUBLE_EQ(m.usage.collision_slots(), 0.0);
  EXPECT_GT(m.delivered, 0u);
}

TEST(Network, MixedTrafficSources) {
  NetworkConfig cfg = base_config(150.0, 60.0);
  Network net(cfg);
  net.add_station(std::make_unique<tcw::chan::PoissonProcess>(0.01));
  net.add_station(
      std::make_unique<tcw::chan::OnOffVoiceProcess>(400.0, 600.0, 100.0));
  net.add_station(
      std::make_unique<tcw::chan::PeriodicJitterProcess>(120.0, 30.0));
  const SimMetrics& m = net.run();
  EXPECT_GT(m.delivered, 0u);
  EXPECT_TRUE(net.stations_consistent());
}

TEST(Network, DeliveredRespectDeadline) {
  auto net = Network::homogeneous_poisson(base_config(60.0, 50.0), 6, 0.02);
  const SimMetrics& m = net.run();
  EXPECT_LE(m.wait_delivered.max(), 60.0);
}

TEST(Network, StationCountAccessor) {
  auto net = Network::homogeneous_poisson(base_config(100.0, 50.0), 7, 0.02);
  EXPECT_EQ(net.station_count(), 7u);
}

TEST(Network, RunTwiceRejected) {
  auto net = Network::homogeneous_poisson(base_config(100.0, 50.0), 3, 0.02);
  net.run();
  EXPECT_THROW(net.run(), tcw::ContractViolation);
}

TEST(Network, BurstyStationStressWithRestamping) {
  // A two-station network where one station frequently holds several
  // messages inside one window, exercising the re-stamp path.
  NetworkConfig cfg = base_config(400.0, 80.0);
  cfg.t_end = 30000.0;
  Network net(cfg);
  // Bursty: long silences, tight packet trains.
  net.add_station(
      std::make_unique<tcw::chan::OnOffVoiceProcess>(200.0, 800.0, 10.0));
  net.add_station(std::make_unique<tcw::chan::PoissonProcess>(0.005));
  const SimMetrics& m = net.run();
  EXPECT_TRUE(net.stations_consistent());
  EXPECT_EQ(m.arrivals, m.delivered + m.lost_sender + m.lost_receiver +
                            m.censored_lost + m.pending_at_end);
  EXPECT_GT(m.delivered, 0u);
}

}  // namespace
