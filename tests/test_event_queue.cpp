#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.hpp"
#include "sim/sampling.hpp"

namespace {

using tcw::sim::EventQueue;

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(q.next_time().has_value());
  EXPECT_FALSE(q.pop().has_value());
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (auto e = q.pop()) e->action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(0); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(1.0, [&] { order.push_back(2); });
  while (auto e = q.pop()) e->action();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, NextTimePeeks) {
  EventQueue q;
  q.schedule(5.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time().value(), 2.0);
  EXPECT_EQ(q.size(), 2u);  // peeking does not consume
}

TEST(EventQueue, CancelPreventsDelivery) {
  EventQueue q;
  bool fired = false;
  const auto id = q.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const auto id = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelMiddleKeepsOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(1); });
  const auto id = q.schedule(2.0, [&] { order.push_back(2); });
  q.schedule(3.0, [&] { order.push_back(3); });
  q.cancel(id);
  while (auto e = q.pop()) e->action();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.pop().has_value());
}

TEST(EventQueue, EntryCarriesTimeAndId) {
  EventQueue q;
  const auto id = q.schedule(4.5, [] {});
  const auto e = q.pop();
  ASSERT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(e->time, 4.5);
  EXPECT_EQ(e->id, id);
}

TEST(EventQueue, RandomizedHeapStress) {
  EventQueue q;
  tcw::sim::Rng rng(314);
  std::vector<double> popped;
  // Interleave schedules, cancels and pops; verify global time order of
  // everything actually delivered.
  std::vector<tcw::sim::EventId> live;
  for (int step = 0; step < 5000; ++step) {
    const double roll = tcw::sim::uniform01(rng);
    if (roll < 0.55 || q.empty()) {
      live.push_back(
          q.schedule(tcw::sim::uniform(rng, 0.0, 1000.0), [] {}));
    } else if (roll < 0.7 && !live.empty()) {
      const auto idx = tcw::sim::uniform_index(rng, live.size());
      q.cancel(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      if (auto e = q.pop()) popped.push_back(e->time);
    }
  }
  // Note: pops interleave with schedules, so only *local* runs between
  // schedules are ordered; drain the rest fully ordered now.
  double last = -1.0;
  while (auto e = q.pop()) {
    EXPECT_GE(e->time, last);
    last = e->time;
  }
  EXPECT_TRUE(q.empty());
}

}  // namespace
