#include "net/experiment.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "analysis/splitting.hpp"
#include "net/aggregate_sim.hpp"
#include "sim/batch_means.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "util/contract.hpp"

namespace {

namespace net = tcw::net;

net::SweepConfig quick_config() {
  net::SweepConfig cfg;
  cfg.offered_load = 0.5;
  cfg.message_length = 25.0;
  cfg.t_end = 30000.0;
  cfg.warmup = 2000.0;
  cfg.replications = 2;
  return cfg;
}

// Every sweep in this file drives the single entry point; the shim
// compatibility test below is the one deliberate exception.
std::vector<net::SweepPoint> sweep(const net::SweepConfig& cfg,
                                   net::ProtocolVariant v,
                                   const std::vector<double>& grid) {
  return net::run_sweep({.config = cfg, .constraints = grid, .variant = v})
      .points();
}

TEST(LinearGrid, EndpointsAndSpacing) {
  const auto g = net::linear_grid(0.0, 100.0, 5);
  ASSERT_EQ(g.size(), 5u);
  EXPECT_DOUBLE_EQ(g.front(), 0.0);
  EXPECT_DOUBLE_EQ(g.back(), 100.0);
  EXPECT_DOUBLE_EQ(g[1], 25.0);
}

TEST(LinearGrid, DegenerateInputsRejected) {
  EXPECT_THROW(net::linear_grid(0.0, 1.0, 1), tcw::ContractViolation);
  EXPECT_THROW(net::linear_grid(1.0, 0.0, 3), tcw::ContractViolation);
}

TEST(PolicyFor, VariantsMapToExpectedShapes) {
  using tcw::core::PositionRule;
  const auto controlled =
      net::policy_for(net::ProtocolVariant::Controlled, 50.0, 10.0);
  EXPECT_TRUE(controlled.discard);
  const auto lcfs =
      net::policy_for(net::ProtocolVariant::LcfsNoDiscard, 50.0, 10.0);
  EXPECT_FALSE(lcfs.discard);
  EXPECT_EQ(lcfs.position, PositionRule::NewestFirst);
}

TEST(ToString, VariantNames) {
  EXPECT_EQ(net::to_string(net::ProtocolVariant::Controlled), "controlled");
  EXPECT_EQ(net::to_string(net::ProtocolVariant::LcfsNoDiscard),
            "lcfs-nodiscard");
}

TEST(SweepConfig, HeuristicWidthIsNuStarOverLambda) {
  const auto cfg = quick_config();
  EXPECT_NEAR(cfg.heuristic_window_width(),
              tcw::analysis::optimal_window_load() / cfg.lambda(), 1e-12);
}

TEST(Sweep, ProducesOnePointPerConstraint) {
  const auto pts = sweep(quick_config(), net::ProtocolVariant::Controlled,
                         {25.0, 50.0, 100.0});
  ASSERT_EQ(pts.size(), 3u);
  for (const auto& p : pts) {
    EXPECT_GE(p.p_loss, 0.0);
    EXPECT_LE(p.p_loss, 1.0);
    EXPECT_GT(p.messages, 0u);
  }
}

TEST(Sweep, LossDecreasesWithK) {
  const auto pts = sweep(quick_config(), net::ProtocolVariant::Controlled,
                         {25.0, 100.0, 400.0});
  EXPECT_GT(pts[0].p_loss, pts[2].p_loss);
}

TEST(Sweep, DeterministicGivenSeed) {
  const auto a = sweep(quick_config(), net::ProtocolVariant::Controlled,
                       {50.0});
  const auto b = sweep(quick_config(), net::ProtocolVariant::Controlled,
                       {50.0});
  EXPECT_DOUBLE_EQ(a[0].p_loss, b[0].p_loss);
}

TEST(Sweep, CustomPolicyFactoryIsHonored) {
  int calls = 0;
  const auto pts = net::run_sweep({.config = quick_config(),
                                  .constraints = {30.0, 60.0},
                                  .make_policy =
                                      [&calls](double k) {
                                        ++calls;
                                        return tcw::core::ControlPolicy::
                                            optimal(k, 40.0);
                                      }})
                       .points();
  EXPECT_EQ(pts.size(), 2u);
  EXPECT_EQ(calls, 2 * quick_config().replications);
}

TEST(Sweep, SingleReplicationUsesWithinRunCi) {
  auto cfg = quick_config();
  cfg.replications = 1;
  const auto pts = sweep(cfg, net::ProtocolVariant::Controlled, {30.0});
  EXPECT_GT(pts[0].ci95, 0.0);
}

TEST(Sweep, SeedsAreHashDerivedPerJob) {
  // The engine must seed job (ki, rep) with
  // derive_stream_seed(base_seed, ki, rep): a replication re-run by hand
  // with that seed reproduces the sweep's per-rep simulator output.
  auto cfg = quick_config();
  cfg.replications = 1;
  const double k = 50.0;
  const auto pts = sweep(cfg, net::ProtocolVariant::Controlled, {k});

  tcw::net::AggregateConfig sim_cfg;
  sim_cfg.policy = net::policy_for(net::ProtocolVariant::Controlled, k,
                                   cfg.heuristic_window_width());
  sim_cfg.message_length = cfg.message_length;
  sim_cfg.success_overhead = cfg.success_overhead;
  sim_cfg.t_end = cfg.t_end;
  sim_cfg.warmup = cfg.warmup;
  sim_cfg.seed = tcw::sim::derive_stream_seed(cfg.base_seed, 0, 0);
  tcw::net::AggregateSimulator sim(
      sim_cfg, std::make_unique<tcw::chan::PoissonProcess>(cfg.lambda()));
  const auto& m = sim.run();
  EXPECT_EQ(pts[0].p_loss, m.p_loss());
  EXPECT_EQ(pts[0].messages, m.decided());
}

TEST(Sweep, AcrossReplicationCiUsesStudentT) {
  // Recompute the across-replication interval by hand: run each
  // replication with the engine's derived seed, then apply the t-quantile
  // on the replication means. The sweep's ci95 must match (and must not
  // be any single rep's binomial CI, the pre-fix behavior).
  auto cfg = quick_config();
  cfg.replications = 3;
  const double k = 50.0;
  const auto pts = sweep(cfg, net::ProtocolVariant::Controlled, {k});

  tcw::sim::RunningStats loss;
  double last_rep_binomial_ci = 0.0;
  for (int rep = 0; rep < cfg.replications; ++rep) {
    tcw::net::AggregateConfig sim_cfg;
    sim_cfg.policy = net::policy_for(net::ProtocolVariant::Controlled, k,
                                     cfg.heuristic_window_width());
    sim_cfg.message_length = cfg.message_length;
    sim_cfg.success_overhead = cfg.success_overhead;
    sim_cfg.t_end = cfg.t_end;
    sim_cfg.warmup = cfg.warmup;
    sim_cfg.seed = tcw::sim::derive_stream_seed(
        cfg.base_seed, 0, static_cast<std::uint64_t>(rep));
    tcw::net::AggregateSimulator sim(
        sim_cfg, std::make_unique<tcw::chan::PoissonProcess>(cfg.lambda()));
    const auto& m = sim.run();
    loss.add(m.p_loss());
    last_rep_binomial_ci = m.p_loss_ci95();
  }
  const double expected = tcw::sim::student_t_975(2) * loss.stddev() /
                          std::sqrt(3.0);
  EXPECT_NEAR(pts[0].ci95, expected, 1e-12);
  EXPECT_NEAR(pts[0].p_loss, loss.mean(), 1e-12);
  // Guard against the old bug resurfacing: the across-rep interval is not
  // the last replication's within-run binomial CI.
  EXPECT_NE(pts[0].ci95, last_rep_binomial_ci);
}

TEST(Sweep, ControlledBeatsBaselinesAtModerateK) {
  const auto cfg = quick_config();
  const std::vector<double> grid{75.0};
  const auto controlled = sweep(cfg, net::ProtocolVariant::Controlled, grid);
  const auto lcfs = sweep(cfg, net::ProtocolVariant::LcfsNoDiscard, grid);
  EXPECT_LT(controlled[0].p_loss, lcfs[0].p_loss + 0.02);
}

TEST(RunSweep, DeprecatedShimsAreBitIdentical) {
  // The five legacy entry points are pure re-spellings of run_sweep; this
  // pins the contract with a bitwise comparison on one of them.
  const auto cfg = quick_config();
  const std::vector<double> grid{40.0, 80.0};
  const auto via_api = sweep(cfg, net::ProtocolVariant::Controlled, grid);
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
  const auto via_shim = net::simulate_loss_curve(
      cfg, net::ProtocolVariant::Controlled, grid);
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif
  ASSERT_EQ(via_shim.size(), via_api.size());
  for (std::size_t i = 0; i < via_api.size(); ++i) {
    EXPECT_EQ(via_shim[i].constraint, via_api[i].constraint);
    EXPECT_EQ(via_shim[i].p_loss, via_api[i].p_loss);
    EXPECT_EQ(via_shim[i].ci95, via_api[i].ci95);
    EXPECT_EQ(via_shim[i].mean_wait, via_api[i].mean_wait);
    EXPECT_EQ(via_shim[i].mean_scheduling, via_api[i].mean_scheduling);
    EXPECT_EQ(via_shim[i].utilization, via_api[i].utilization);
    EXPECT_EQ(via_shim[i].sender_loss_frac, via_api[i].sender_loss_frac);
    EXPECT_EQ(via_shim[i].receiver_loss_frac, via_api[i].receiver_loss_frac);
    EXPECT_EQ(via_shim[i].messages, via_api[i].messages);
  }
}

}  // namespace
