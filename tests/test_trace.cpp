#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "net/aggregate_sim.hpp"
#include "net/network.hpp"
#include "util/contract.hpp"

namespace {

using tcw::sim::TraceKind;
using tcw::sim::TraceLog;
using tcw::sim::TraceRecord;

TEST(TraceLog, StartsEmpty) {
  TraceLog log(8);
  EXPECT_EQ(log.total_recorded(), 0u);
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_TRUE(log.snapshot().empty());
}

TEST(TraceLog, ZeroCapacityRejected) {
  EXPECT_THROW(TraceLog log(0), tcw::ContractViolation);
}

TEST(TraceLog, RecordsInOrder) {
  TraceLog log(8);
  log.record(1.0, TraceKind::ProcessStart, 0.0, 5.0);
  log.record(2.0, TraceKind::ProbeIdle, 0.0, 5.0);
  log.record(3.0, TraceKind::Transmission, 1.5);
  const auto records = log.snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].kind, TraceKind::ProcessStart);
  EXPECT_EQ(records[1].kind, TraceKind::ProbeIdle);
  EXPECT_EQ(records[2].kind, TraceKind::Transmission);
  EXPECT_DOUBLE_EQ(records[2].lo, 1.5);
}

TEST(TraceLog, RingDropsOldest) {
  TraceLog log(3);
  for (int i = 0; i < 5; ++i) {
    log.record(static_cast<double>(i), TraceKind::ProbeIdle);
  }
  EXPECT_EQ(log.total_recorded(), 5u);
  EXPECT_EQ(log.dropped(), 2u);
  const auto records = log.snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_DOUBLE_EQ(records[0].time, 2.0);
  EXPECT_DOUBLE_EQ(records[2].time, 4.0);
}

TEST(TraceLog, CapacityOneKeepsOnlyTheNewestRecord) {
  TraceLog log(1);
  for (int i = 0; i < 4; ++i) {
    log.record(static_cast<double>(i), TraceKind::Transmission);
  }
  EXPECT_EQ(log.total_recorded(), 4u);
  EXPECT_EQ(log.dropped(), 3u);
  const auto records = log.snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_DOUBLE_EQ(records[0].time, 3.0);
}

TEST(TraceLog, SnapshotIsOldestFirstAfterRepeatedWraps) {
  TraceLog log(3);
  // Wrap the ring several times; the survivors must be the last three
  // records in recording (oldest-first) order.
  for (int i = 0; i < 11; ++i) {
    log.record(static_cast<double>(i), TraceKind::ProbeIdle);
  }
  EXPECT_EQ(log.dropped(), 8u);
  const auto records = log.snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_DOUBLE_EQ(records[0].time, 8.0);
  EXPECT_DOUBLE_EQ(records[1].time, 9.0);
  EXPECT_DOUBLE_EQ(records[2].time, 10.0);
}

TEST(TraceLog, CountsPerKindSurviveRingWrap) {
  TraceLog log(2);
  for (int i = 0; i < 10; ++i) log.record(i, TraceKind::ProbeCollision);
  log.record(11.0, TraceKind::Transmission);
  EXPECT_EQ(log.count(TraceKind::ProbeCollision), 10u);
  EXPECT_EQ(log.count(TraceKind::Transmission), 1u);
  EXPECT_EQ(log.count(TraceKind::SenderDiscard), 0u);
}

TEST(TraceLog, ClearResets) {
  TraceLog log(4);
  log.record(1.0, TraceKind::ProbeIdle);
  log.clear();
  EXPECT_EQ(log.total_recorded(), 0u);
  EXPECT_TRUE(log.snapshot().empty());
  EXPECT_EQ(log.count(TraceKind::ProbeIdle), 0u);
}

TEST(TraceLog, WriteMentionsKindsAndWindows) {
  TraceLog log(4);
  log.record(1.0, TraceKind::ProbeCollision, 2.0, 4.0);
  std::ostringstream os;
  log.write(os);
  EXPECT_NE(os.str().find("probe-collision"), std::string::npos);
  EXPECT_NE(os.str().find("[2, 4)"), std::string::npos);
}

TEST(TraceLog, ToStringCoversAllKinds) {
  for (const auto kind :
       {TraceKind::ProcessStart, TraceKind::ProbeIdle,
        TraceKind::ProbeCollision, TraceKind::Transmission,
        TraceKind::SenderDiscard, TraceKind::LateAtReceiver}) {
    EXPECT_NE(to_string(kind), "?");
  }
}

TEST(TraceIntegration, SimulatorFillsTheLog) {
  TraceLog log(1u << 16);
  tcw::net::AggregateConfig cfg;
  cfg.policy = tcw::core::ControlPolicy::optimal(50.0, 54.0);
  cfg.message_length = 25.0;
  cfg.t_end = 20000.0;
  cfg.warmup = 1000.0;
  cfg.trace = &log;
  tcw::net::AggregateSimulator sim(
      cfg, std::make_unique<tcw::chan::PoissonProcess>(0.025));
  const auto& m = sim.run();

  // Transmissions in the log match the channel usage count exactly.
  EXPECT_EQ(log.count(TraceKind::Transmission), m.usage.messages_carried());
  // Collisions and idle probes match the slot accounting.
  EXPECT_EQ(log.count(TraceKind::ProbeCollision),
            static_cast<std::uint64_t>(m.usage.collision_slots()));
  // Sender discards at least cover the counted (post-warmup) ones.
  EXPECT_GE(log.count(TraceKind::SenderDiscard), m.lost_sender);
  EXPECT_GT(log.count(TraceKind::ProcessStart), 0u);

  // Snapshot times are non-decreasing.
  const auto records = log.snapshot();
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_GE(records[i].time, records[i - 1].time);
  }
}

TEST(TraceIntegration, NetworkAlsoFillsTheLog) {
  TraceLog log(1u << 14);
  tcw::net::NetworkConfig cfg;
  cfg.policy = tcw::core::ControlPolicy::optimal(60.0, 50.0);
  cfg.message_length = 25.0;
  cfg.t_end = 10000.0;
  cfg.warmup = 500.0;
  cfg.trace = &log;
  auto net = tcw::net::Network::homogeneous_poisson(cfg, 4, 0.02);
  const auto& m = net.run();
  EXPECT_EQ(log.count(TraceKind::Transmission), m.usage.messages_carried());
  EXPECT_EQ(log.count(TraceKind::ProbeCollision),
            static_cast<std::uint64_t>(m.usage.collision_slots()));
}

TEST(TraceIntegration, NullTraceIsNoop) {
  tcw::net::AggregateConfig cfg;
  cfg.policy = tcw::core::ControlPolicy::optimal(50.0, 54.0);
  cfg.message_length = 25.0;
  cfg.t_end = 5000.0;
  cfg.warmup = 500.0;
  tcw::net::AggregateSimulator sim(
      cfg, std::make_unique<tcw::chan::PoissonProcess>(0.02));
  EXPECT_NO_THROW(sim.run());
}

}  // namespace
