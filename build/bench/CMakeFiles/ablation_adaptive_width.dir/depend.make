# Empty dependencies file for ablation_adaptive_width.
# This may be replaced when dependencies are built.
