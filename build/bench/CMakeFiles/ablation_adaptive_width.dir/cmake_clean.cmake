file(REMOVE_RECURSE
  "CMakeFiles/ablation_adaptive_width.dir/ablation_adaptive_width.cpp.o"
  "CMakeFiles/ablation_adaptive_width.dir/ablation_adaptive_width.cpp.o.d"
  "ablation_adaptive_width"
  "ablation_adaptive_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adaptive_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
