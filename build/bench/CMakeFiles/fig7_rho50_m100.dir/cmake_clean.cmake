file(REMOVE_RECURSE
  "CMakeFiles/fig7_rho50_m100.dir/fig7_rho50_m100.cpp.o"
  "CMakeFiles/fig7_rho50_m100.dir/fig7_rho50_m100.cpp.o.d"
  "fig7_rho50_m100"
  "fig7_rho50_m100.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_rho50_m100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
