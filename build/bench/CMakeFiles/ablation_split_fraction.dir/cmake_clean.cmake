file(REMOVE_RECURSE
  "CMakeFiles/ablation_split_fraction.dir/ablation_split_fraction.cpp.o"
  "CMakeFiles/ablation_split_fraction.dir/ablation_split_fraction.cpp.o.d"
  "ablation_split_fraction"
  "ablation_split_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_split_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
