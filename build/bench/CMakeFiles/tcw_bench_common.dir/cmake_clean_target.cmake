file(REMOVE_RECURSE
  "libtcw_bench_common.a"
)
