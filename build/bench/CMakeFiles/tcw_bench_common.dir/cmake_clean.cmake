file(REMOVE_RECURSE
  "CMakeFiles/tcw_bench_common.dir/fig7_common.cpp.o"
  "CMakeFiles/tcw_bench_common.dir/fig7_common.cpp.o.d"
  "libtcw_bench_common.a"
  "libtcw_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcw_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
