# Empty dependencies file for tcw_bench_common.
# This may be replaced when dependencies are built.
