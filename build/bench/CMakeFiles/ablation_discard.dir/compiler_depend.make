# Empty compiler generated dependencies file for ablation_discard.
# This may be replaced when dependencies are built.
