file(REMOVE_RECURSE
  "CMakeFiles/ablation_discard.dir/ablation_discard.cpp.o"
  "CMakeFiles/ablation_discard.dir/ablation_discard.cpp.o.d"
  "ablation_discard"
  "ablation_discard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_discard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
