# Empty dependencies file for ablation_asynchrony.
# This may be replaced when dependencies are built.
