file(REMOVE_RECURSE
  "CMakeFiles/ablation_asynchrony.dir/ablation_asynchrony.cpp.o"
  "CMakeFiles/ablation_asynchrony.dir/ablation_asynchrony.cpp.o.d"
  "ablation_asynchrony"
  "ablation_asynchrony.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_asynchrony.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
