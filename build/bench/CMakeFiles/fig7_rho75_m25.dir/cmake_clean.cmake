file(REMOVE_RECURSE
  "CMakeFiles/fig7_rho75_m25.dir/fig7_rho75_m25.cpp.o"
  "CMakeFiles/fig7_rho75_m25.dir/fig7_rho75_m25.cpp.o.d"
  "fig7_rho75_m25"
  "fig7_rho75_m25.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_rho75_m25.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
