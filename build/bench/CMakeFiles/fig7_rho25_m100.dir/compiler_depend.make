# Empty compiler generated dependencies file for fig7_rho25_m100.
# This may be replaced when dependencies are built.
