# Empty compiler generated dependencies file for fig7_rho50_m25.
# This may be replaced when dependencies are built.
