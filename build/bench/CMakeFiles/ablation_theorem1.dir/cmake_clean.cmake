file(REMOVE_RECURSE
  "CMakeFiles/ablation_theorem1.dir/ablation_theorem1.cpp.o"
  "CMakeFiles/ablation_theorem1.dir/ablation_theorem1.cpp.o.d"
  "ablation_theorem1"
  "ablation_theorem1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_theorem1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
