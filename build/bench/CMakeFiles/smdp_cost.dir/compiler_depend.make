# Empty compiler generated dependencies file for smdp_cost.
# This may be replaced when dependencies are built.
