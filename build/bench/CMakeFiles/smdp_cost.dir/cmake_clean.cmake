file(REMOVE_RECURSE
  "CMakeFiles/smdp_cost.dir/smdp_cost.cpp.o"
  "CMakeFiles/smdp_cost.dir/smdp_cost.cpp.o.d"
  "smdp_cost"
  "smdp_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smdp_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
