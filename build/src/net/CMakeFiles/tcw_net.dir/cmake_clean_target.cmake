file(REMOVE_RECURSE
  "libtcw_net.a"
)
