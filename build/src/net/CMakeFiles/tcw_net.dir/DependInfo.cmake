
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/aggregate_sim.cpp" "src/net/CMakeFiles/tcw_net.dir/aggregate_sim.cpp.o" "gcc" "src/net/CMakeFiles/tcw_net.dir/aggregate_sim.cpp.o.d"
  "/root/repo/src/net/experiment.cpp" "src/net/CMakeFiles/tcw_net.dir/experiment.cpp.o" "gcc" "src/net/CMakeFiles/tcw_net.dir/experiment.cpp.o.d"
  "/root/repo/src/net/metrics.cpp" "src/net/CMakeFiles/tcw_net.dir/metrics.cpp.o" "gcc" "src/net/CMakeFiles/tcw_net.dir/metrics.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/net/CMakeFiles/tcw_net.dir/network.cpp.o" "gcc" "src/net/CMakeFiles/tcw_net.dir/network.cpp.o.d"
  "/root/repo/src/net/priority.cpp" "src/net/CMakeFiles/tcw_net.dir/priority.cpp.o" "gcc" "src/net/CMakeFiles/tcw_net.dir/priority.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tcw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tcw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/chan/CMakeFiles/tcw_chan.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tcw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/tcw_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/tcw_dist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
