# Empty compiler generated dependencies file for tcw_net.
# This may be replaced when dependencies are built.
