file(REMOVE_RECURSE
  "CMakeFiles/tcw_net.dir/aggregate_sim.cpp.o"
  "CMakeFiles/tcw_net.dir/aggregate_sim.cpp.o.d"
  "CMakeFiles/tcw_net.dir/experiment.cpp.o"
  "CMakeFiles/tcw_net.dir/experiment.cpp.o.d"
  "CMakeFiles/tcw_net.dir/metrics.cpp.o"
  "CMakeFiles/tcw_net.dir/metrics.cpp.o.d"
  "CMakeFiles/tcw_net.dir/network.cpp.o"
  "CMakeFiles/tcw_net.dir/network.cpp.o.d"
  "CMakeFiles/tcw_net.dir/priority.cpp.o"
  "CMakeFiles/tcw_net.dir/priority.cpp.o.d"
  "libtcw_net.a"
  "libtcw_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcw_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
