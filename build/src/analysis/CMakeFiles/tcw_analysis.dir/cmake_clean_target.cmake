file(REMOVE_RECURSE
  "libtcw_analysis.a"
)
