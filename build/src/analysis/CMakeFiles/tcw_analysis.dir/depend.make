# Empty dependencies file for tcw_analysis.
# This may be replaced when dependencies are built.
