
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/busy_period.cpp" "src/analysis/CMakeFiles/tcw_analysis.dir/busy_period.cpp.o" "gcc" "src/analysis/CMakeFiles/tcw_analysis.dir/busy_period.cpp.o.d"
  "/root/repo/src/analysis/loss_model.cpp" "src/analysis/CMakeFiles/tcw_analysis.dir/loss_model.cpp.o" "gcc" "src/analysis/CMakeFiles/tcw_analysis.dir/loss_model.cpp.o.d"
  "/root/repo/src/analysis/mg1.cpp" "src/analysis/CMakeFiles/tcw_analysis.dir/mg1.cpp.o" "gcc" "src/analysis/CMakeFiles/tcw_analysis.dir/mg1.cpp.o.d"
  "/root/repo/src/analysis/splitting.cpp" "src/analysis/CMakeFiles/tcw_analysis.dir/splitting.cpp.o" "gcc" "src/analysis/CMakeFiles/tcw_analysis.dir/splitting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tcw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/tcw_dist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
