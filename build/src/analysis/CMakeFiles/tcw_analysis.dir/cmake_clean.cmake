file(REMOVE_RECURSE
  "CMakeFiles/tcw_analysis.dir/busy_period.cpp.o"
  "CMakeFiles/tcw_analysis.dir/busy_period.cpp.o.d"
  "CMakeFiles/tcw_analysis.dir/loss_model.cpp.o"
  "CMakeFiles/tcw_analysis.dir/loss_model.cpp.o.d"
  "CMakeFiles/tcw_analysis.dir/mg1.cpp.o"
  "CMakeFiles/tcw_analysis.dir/mg1.cpp.o.d"
  "CMakeFiles/tcw_analysis.dir/splitting.cpp.o"
  "CMakeFiles/tcw_analysis.dir/splitting.cpp.o.d"
  "libtcw_analysis.a"
  "libtcw_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcw_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
