
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chan/arrivals.cpp" "src/chan/CMakeFiles/tcw_chan.dir/arrivals.cpp.o" "gcc" "src/chan/CMakeFiles/tcw_chan.dir/arrivals.cpp.o.d"
  "/root/repo/src/chan/channel.cpp" "src/chan/CMakeFiles/tcw_chan.dir/channel.cpp.o" "gcc" "src/chan/CMakeFiles/tcw_chan.dir/channel.cpp.o.d"
  "/root/repo/src/chan/message.cpp" "src/chan/CMakeFiles/tcw_chan.dir/message.cpp.o" "gcc" "src/chan/CMakeFiles/tcw_chan.dir/message.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tcw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tcw_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
