file(REMOVE_RECURSE
  "libtcw_chan.a"
)
