file(REMOVE_RECURSE
  "CMakeFiles/tcw_chan.dir/arrivals.cpp.o"
  "CMakeFiles/tcw_chan.dir/arrivals.cpp.o.d"
  "CMakeFiles/tcw_chan.dir/channel.cpp.o"
  "CMakeFiles/tcw_chan.dir/channel.cpp.o.d"
  "CMakeFiles/tcw_chan.dir/message.cpp.o"
  "CMakeFiles/tcw_chan.dir/message.cpp.o.d"
  "libtcw_chan.a"
  "libtcw_chan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcw_chan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
