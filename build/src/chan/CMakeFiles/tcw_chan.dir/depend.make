# Empty dependencies file for tcw_chan.
# This may be replaced when dependencies are built.
