file(REMOVE_RECURSE
  "CMakeFiles/tcw_dist.dir/families.cpp.o"
  "CMakeFiles/tcw_dist.dir/families.cpp.o.d"
  "CMakeFiles/tcw_dist.dir/pmf.cpp.o"
  "CMakeFiles/tcw_dist.dir/pmf.cpp.o.d"
  "libtcw_dist.a"
  "libtcw_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcw_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
