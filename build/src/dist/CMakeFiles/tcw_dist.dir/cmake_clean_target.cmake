file(REMOVE_RECURSE
  "libtcw_dist.a"
)
