# Empty compiler generated dependencies file for tcw_dist.
# This may be replaced when dependencies are built.
