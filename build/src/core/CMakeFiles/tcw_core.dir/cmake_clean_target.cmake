file(REMOVE_RECURSE
  "libtcw_core.a"
)
