# Empty dependencies file for tcw_core.
# This may be replaced when dependencies are built.
