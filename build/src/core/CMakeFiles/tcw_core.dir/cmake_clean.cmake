file(REMOVE_RECURSE
  "CMakeFiles/tcw_core.dir/controller.cpp.o"
  "CMakeFiles/tcw_core.dir/controller.cpp.o.d"
  "CMakeFiles/tcw_core.dir/policy.cpp.o"
  "CMakeFiles/tcw_core.dir/policy.cpp.o.d"
  "libtcw_core.a"
  "libtcw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
