file(REMOVE_RECURSE
  "CMakeFiles/tcw_smdp.dir/policy_iteration.cpp.o"
  "CMakeFiles/tcw_smdp.dir/policy_iteration.cpp.o.d"
  "CMakeFiles/tcw_smdp.dir/smdp.cpp.o"
  "CMakeFiles/tcw_smdp.dir/smdp.cpp.o.d"
  "CMakeFiles/tcw_smdp.dir/value_iteration.cpp.o"
  "CMakeFiles/tcw_smdp.dir/value_iteration.cpp.o.d"
  "CMakeFiles/tcw_smdp.dir/window_model.cpp.o"
  "CMakeFiles/tcw_smdp.dir/window_model.cpp.o.d"
  "libtcw_smdp.a"
  "libtcw_smdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcw_smdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
