
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smdp/policy_iteration.cpp" "src/smdp/CMakeFiles/tcw_smdp.dir/policy_iteration.cpp.o" "gcc" "src/smdp/CMakeFiles/tcw_smdp.dir/policy_iteration.cpp.o.d"
  "/root/repo/src/smdp/smdp.cpp" "src/smdp/CMakeFiles/tcw_smdp.dir/smdp.cpp.o" "gcc" "src/smdp/CMakeFiles/tcw_smdp.dir/smdp.cpp.o.d"
  "/root/repo/src/smdp/value_iteration.cpp" "src/smdp/CMakeFiles/tcw_smdp.dir/value_iteration.cpp.o" "gcc" "src/smdp/CMakeFiles/tcw_smdp.dir/value_iteration.cpp.o.d"
  "/root/repo/src/smdp/window_model.cpp" "src/smdp/CMakeFiles/tcw_smdp.dir/window_model.cpp.o" "gcc" "src/smdp/CMakeFiles/tcw_smdp.dir/window_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tcw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/tcw_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tcw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/tcw_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/tcw_dist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
