# Empty dependencies file for tcw_smdp.
# This may be replaced when dependencies are built.
