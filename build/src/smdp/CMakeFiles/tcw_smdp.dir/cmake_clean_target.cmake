file(REMOVE_RECURSE
  "libtcw_smdp.a"
)
