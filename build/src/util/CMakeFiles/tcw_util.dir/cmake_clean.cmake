file(REMOVE_RECURSE
  "CMakeFiles/tcw_util.dir/ascii_plot.cpp.o"
  "CMakeFiles/tcw_util.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/tcw_util.dir/contract.cpp.o"
  "CMakeFiles/tcw_util.dir/contract.cpp.o.d"
  "CMakeFiles/tcw_util.dir/csv.cpp.o"
  "CMakeFiles/tcw_util.dir/csv.cpp.o.d"
  "CMakeFiles/tcw_util.dir/flags.cpp.o"
  "CMakeFiles/tcw_util.dir/flags.cpp.o.d"
  "CMakeFiles/tcw_util.dir/interval_set.cpp.o"
  "CMakeFiles/tcw_util.dir/interval_set.cpp.o.d"
  "CMakeFiles/tcw_util.dir/strings.cpp.o"
  "CMakeFiles/tcw_util.dir/strings.cpp.o.d"
  "libtcw_util.a"
  "libtcw_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcw_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
