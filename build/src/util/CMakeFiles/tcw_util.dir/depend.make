# Empty dependencies file for tcw_util.
# This may be replaced when dependencies are built.
