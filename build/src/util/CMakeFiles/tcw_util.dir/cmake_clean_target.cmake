file(REMOVE_RECURSE
  "libtcw_util.a"
)
