file(REMOVE_RECURSE
  "CMakeFiles/tcw_sim.dir/batch_means.cpp.o"
  "CMakeFiles/tcw_sim.dir/batch_means.cpp.o.d"
  "CMakeFiles/tcw_sim.dir/event_queue.cpp.o"
  "CMakeFiles/tcw_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/tcw_sim.dir/histogram.cpp.o"
  "CMakeFiles/tcw_sim.dir/histogram.cpp.o.d"
  "CMakeFiles/tcw_sim.dir/quantile.cpp.o"
  "CMakeFiles/tcw_sim.dir/quantile.cpp.o.d"
  "CMakeFiles/tcw_sim.dir/rng.cpp.o"
  "CMakeFiles/tcw_sim.dir/rng.cpp.o.d"
  "CMakeFiles/tcw_sim.dir/sampling.cpp.o"
  "CMakeFiles/tcw_sim.dir/sampling.cpp.o.d"
  "CMakeFiles/tcw_sim.dir/simulator.cpp.o"
  "CMakeFiles/tcw_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/tcw_sim.dir/stats.cpp.o"
  "CMakeFiles/tcw_sim.dir/stats.cpp.o.d"
  "CMakeFiles/tcw_sim.dir/trace.cpp.o"
  "CMakeFiles/tcw_sim.dir/trace.cpp.o.d"
  "libtcw_sim.a"
  "libtcw_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcw_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
