file(REMOVE_RECURSE
  "libtcw_sim.a"
)
