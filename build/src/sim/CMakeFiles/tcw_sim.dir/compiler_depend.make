# Empty compiler generated dependencies file for tcw_sim.
# This may be replaced when dependencies are built.
