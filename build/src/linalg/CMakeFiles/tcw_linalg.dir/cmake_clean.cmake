file(REMOVE_RECURSE
  "CMakeFiles/tcw_linalg.dir/lu.cpp.o"
  "CMakeFiles/tcw_linalg.dir/lu.cpp.o.d"
  "CMakeFiles/tcw_linalg.dir/markov_chain.cpp.o"
  "CMakeFiles/tcw_linalg.dir/markov_chain.cpp.o.d"
  "CMakeFiles/tcw_linalg.dir/matrix.cpp.o"
  "CMakeFiles/tcw_linalg.dir/matrix.cpp.o.d"
  "libtcw_linalg.a"
  "libtcw_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcw_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
