# Empty compiler generated dependencies file for tcw_linalg.
# This may be replaced when dependencies are built.
