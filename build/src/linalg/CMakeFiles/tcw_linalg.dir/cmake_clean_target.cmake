file(REMOVE_RECURSE
  "libtcw_linalg.a"
)
