file(REMOVE_RECURSE
  "CMakeFiles/test_adaptive_width.dir/test_adaptive_width.cpp.o"
  "CMakeFiles/test_adaptive_width.dir/test_adaptive_width.cpp.o.d"
  "test_adaptive_width"
  "test_adaptive_width.pdb"
  "test_adaptive_width[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adaptive_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
