# Empty dependencies file for test_adaptive_width.
# This may be replaced when dependencies are built.
