file(REMOVE_RECURSE
  "CMakeFiles/test_mg1.dir/test_mg1.cpp.o"
  "CMakeFiles/test_mg1.dir/test_mg1.cpp.o.d"
  "test_mg1"
  "test_mg1.pdb"
  "test_mg1[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mg1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
