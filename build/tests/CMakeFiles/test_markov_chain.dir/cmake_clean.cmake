file(REMOVE_RECURSE
  "CMakeFiles/test_markov_chain.dir/test_markov_chain.cpp.o"
  "CMakeFiles/test_markov_chain.dir/test_markov_chain.cpp.o.d"
  "test_markov_chain"
  "test_markov_chain.pdb"
  "test_markov_chain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_markov_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
