# Empty dependencies file for test_markov_chain.
# This may be replaced when dependencies are built.
