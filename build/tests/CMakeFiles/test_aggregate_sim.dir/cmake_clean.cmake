file(REMOVE_RECURSE
  "CMakeFiles/test_aggregate_sim.dir/test_aggregate_sim.cpp.o"
  "CMakeFiles/test_aggregate_sim.dir/test_aggregate_sim.cpp.o.d"
  "test_aggregate_sim"
  "test_aggregate_sim.pdb"
  "test_aggregate_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aggregate_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
