file(REMOVE_RECURSE
  "CMakeFiles/test_busy_period.dir/test_busy_period.cpp.o"
  "CMakeFiles/test_busy_period.dir/test_busy_period.cpp.o.d"
  "test_busy_period"
  "test_busy_period.pdb"
  "test_busy_period[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_busy_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
