# Empty dependencies file for test_busy_period.
# This may be replaced when dependencies are built.
