file(REMOVE_RECURSE
  "CMakeFiles/test_fig7_pipeline.dir/test_fig7_pipeline.cpp.o"
  "CMakeFiles/test_fig7_pipeline.dir/test_fig7_pipeline.cpp.o.d"
  "test_fig7_pipeline"
  "test_fig7_pipeline.pdb"
  "test_fig7_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fig7_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
