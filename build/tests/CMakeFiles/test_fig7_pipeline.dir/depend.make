# Empty dependencies file for test_fig7_pipeline.
# This may be replaced when dependencies are built.
