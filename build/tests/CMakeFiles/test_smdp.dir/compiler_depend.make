# Empty compiler generated dependencies file for test_smdp.
# This may be replaced when dependencies are built.
