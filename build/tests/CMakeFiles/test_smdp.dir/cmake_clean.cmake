file(REMOVE_RECURSE
  "CMakeFiles/test_smdp.dir/test_smdp.cpp.o"
  "CMakeFiles/test_smdp.dir/test_smdp.cpp.o.d"
  "test_smdp"
  "test_smdp.pdb"
  "test_smdp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
