file(REMOVE_RECURSE
  "CMakeFiles/test_controller_property.dir/test_controller_property.cpp.o"
  "CMakeFiles/test_controller_property.dir/test_controller_property.cpp.o.d"
  "test_controller_property"
  "test_controller_property.pdb"
  "test_controller_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_controller_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
