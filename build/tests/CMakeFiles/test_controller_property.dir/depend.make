# Empty dependencies file for test_controller_property.
# This may be replaced when dependencies are built.
