# Empty dependencies file for test_alpha_split.
# This may be replaced when dependencies are built.
