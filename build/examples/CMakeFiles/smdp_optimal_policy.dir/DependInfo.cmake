
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/smdp_optimal_policy.cpp" "examples/CMakeFiles/smdp_optimal_policy.dir/smdp_optimal_policy.cpp.o" "gcc" "examples/CMakeFiles/smdp_optimal_policy.dir/smdp_optimal_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/tcw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/smdp/CMakeFiles/tcw_smdp.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/tcw_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tcw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/chan/CMakeFiles/tcw_chan.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/tcw_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tcw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/tcw_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tcw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
