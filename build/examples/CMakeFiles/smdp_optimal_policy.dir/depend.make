# Empty dependencies file for smdp_optimal_policy.
# This may be replaced when dependencies are built.
