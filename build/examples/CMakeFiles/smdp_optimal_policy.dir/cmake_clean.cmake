file(REMOVE_RECURSE
  "CMakeFiles/smdp_optimal_policy.dir/smdp_optimal_policy.cpp.o"
  "CMakeFiles/smdp_optimal_policy.dir/smdp_optimal_policy.cpp.o.d"
  "smdp_optimal_policy"
  "smdp_optimal_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smdp_optimal_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
