file(REMOVE_RECURSE
  "CMakeFiles/figure4_walkthrough.dir/figure4_walkthrough.cpp.o"
  "CMakeFiles/figure4_walkthrough.dir/figure4_walkthrough.cpp.o.d"
  "figure4_walkthrough"
  "figure4_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure4_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
