# Empty dependencies file for packet_voice.
# This may be replaced when dependencies are built.
