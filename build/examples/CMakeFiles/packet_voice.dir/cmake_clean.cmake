file(REMOVE_RECURSE
  "CMakeFiles/packet_voice.dir/packet_voice.cpp.o"
  "CMakeFiles/packet_voice.dir/packet_voice.cpp.o.d"
  "packet_voice"
  "packet_voice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_voice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
