# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--t-end" "20000")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_packet_voice "/root/repo/build/examples/packet_voice" "--talkers" "24" "--t-end" "30000")
set_tests_properties(example_packet_voice PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sensor_network "/root/repo/build/examples/sensor_network" "--t-end" "30000")
set_tests_properties(example_sensor_network PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_policy_comparison "/root/repo/build/examples/policy_comparison" "--t-end" "20000" "--reps" "1")
set_tests_properties(example_policy_comparison PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_smdp_optimal_policy "/root/repo/build/examples/smdp_optimal_policy" "--k" "12" "--samples" "1000")
set_tests_properties(example_smdp_optimal_policy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_priority_demo "/root/repo/build/examples/priority_demo" "--t-end" "40000")
set_tests_properties(example_priority_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_figure4_walkthrough "/root/repo/build/examples/figure4_walkthrough" "--steps" "25")
set_tests_properties(example_figure4_walkthrough PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sweep_tool "/root/repo/build/examples/sweep_tool" "--t-end" "20000" "--points" "3" "--reps" "1" "--csv" "sweep_tool_test.csv")
set_tests_properties(example_sweep_tool PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;33;add_test;/root/repo/examples/CMakeLists.txt;0;")
