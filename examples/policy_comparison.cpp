// Side-by-side comparison of the paper's protocol variants over a sweep of
// the time constraint K: the controlled protocol (Theorem-1 elements +
// sender discard) against the [Kurose 83] FCFS / LCFS / RANDOM baselines,
// with the analytic curves where available.
#include <cstdio>
#include <iostream>

#include "analysis/loss_model.hpp"
#include "net/experiment.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  double rho = 0.5;
  double m = 25.0;
  double t_end = 150000.0;
  long long reps = 2;
  tcw::Flags flags("policy_comparison",
                   "Loss vs K for all four protocol variants");
  flags.add("rho", &rho, "offered load rho'");
  flags.add("m", &m, "message length M in slots");
  flags.add("t-end", &t_end, "simulated slots per replication");
  flags.add("reps", &reps, "replications");
  if (!flags.parse(argc, argv)) return 1;

  tcw::net::SweepConfig cfg;
  cfg.offered_load = rho;
  cfg.message_length = m;
  cfg.t_end = t_end;
  cfg.warmup = t_end / 15.0;
  cfg.replications = static_cast<int>(reps);

  std::vector<double> grid;
  for (const double r : {1.0, 2.0, 3.0, 4.0, 6.0, 8.0}) grid.push_back(r * m);

  tcw::analysis::ProtocolModelConfig model;
  model.offered_load = rho;
  model.message_length = m;
  const auto analytic = tcw::analysis::controlled_loss_curve(model, grid);

  std::printf("policy comparison at rho' = %.2f, M = %.0f "
              "(loss fractions; lower is better)\n\n", rho, m);
  tcw::Table table({"K", "controlled(sim)", "controlled(eq4.7)",
                    "fcfs", "lcfs", "random"});
  const auto run = [&](tcw::net::ProtocolVariant v) {
    return tcw::net::run_sweep({.config = cfg, .constraints = grid, .variant = v})
        .points();
  };
  const auto ctrl = run(tcw::net::ProtocolVariant::Controlled);
  const auto fcfs = run(tcw::net::ProtocolVariant::FcfsNoDiscard);
  const auto lcfs = run(tcw::net::ProtocolVariant::LcfsNoDiscard);
  const auto rnd = run(tcw::net::ProtocolVariant::RandomNoDiscard);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    table.add_row({tcw::format_fixed(grid[i], 0),
                   tcw::format_fixed(ctrl[i].p_loss, 5),
                   tcw::format_fixed(analytic[i].p_loss, 5),
                   tcw::format_fixed(fcfs[i].p_loss, 5),
                   tcw::format_fixed(lcfs[i].p_loss, 5),
                   tcw::format_fixed(rnd[i].p_loss, 5)});
  }
  table.write_pretty(std::cout);
  std::printf("\nLCFS and RANDOM decay far more slowly than FCFS: late\n"
              "service orders leave a heavy waiting-time tail, which the\n"
              "controlled protocol converts into cheap sender discards.\n");
  return 0;
}
