// General-purpose sweep driver: the experiment tool a downstream user
// reaches for first. Sweeps the time constraint K for any protocol
// variant and workload from the command line, prints the loss/delay
// series, and writes a CSV.
//
//   $ ./sweep_tool --variant controlled --rho 0.6 --m 25 \
//         --k-min 25 --k-max 400 --points 8 --csv out.csv
//
// With --suite, all four variants run together as one job graph on a
// shared thread pool (cross-variant work stealing), writing one CSV per
// variant plus a consolidated BENCH_JSON report; each variant's numbers
// are bit-identical to its standalone run at the same seed.
#include <cstdio>
#include <iostream>
#include <vector>

#include "analysis/loss_model.hpp"
#include "exec/sweep_scheduler.hpp"
#include "exec/thread_pool.hpp"
#include "net/experiment.hpp"
#include "obs_support.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/strings.hpp"

namespace {

// "out.csv" + "fcfs" -> "out_fcfs.csv"; no .csv suffix -> append.
std::string variant_csv_path(const std::string& base,
                             const std::string& variant) {
  const std::string ext = ".csv";
  if (base.size() > ext.size() &&
      base.compare(base.size() - ext.size(), ext.size(), ext) == 0) {
    return base.substr(0, base.size() - ext.size()) + "_" + variant + ext;
  }
  return base + "_" + variant + ext;
}

int run_suite(const tcw::net::SweepConfig& cfg,
              const std::vector<double>& grid, long long threads,
              const std::string& csv, const tcw::bench::ObsOptions& obs_opts) {
  struct VariantSpec {
    const char* name;
    tcw::net::ProtocolVariant variant;
  };
  const std::vector<VariantSpec> variants = {
      {"controlled", tcw::net::ProtocolVariant::Controlled},
      {"fcfs", tcw::net::ProtocolVariant::FcfsNoDiscard},
      {"lcfs", tcw::net::ProtocolVariant::LcfsNoDiscard},
      {"random", tcw::net::ProtocolVariant::RandomNoDiscard},
  };

  tcw::bench::ObsSession obs("sweep_suite", obs_opts);
  tcw::exec::ThreadPool pool(
      tcw::exec::resolve_threads(static_cast<int>(threads)));
  tcw::exec::SweepScheduler scheduler(pool);
  obs.attach(scheduler);
  std::vector<tcw::net::ScheduledSweep> handles;
  handles.reserve(variants.size());
  for (const VariantSpec& v : variants) {
    handles.push_back(tcw::net::run_sweep(
        {.config = cfg, .constraints = grid, .variant = v.variant},
        {.scheduler = &scheduler, .name = v.name}));
  }
  const auto report = scheduler.run();

  std::vector<std::vector<tcw::net::SweepPoint>> points;
  points.reserve(handles.size());
  for (const auto& h : handles) points.push_back(h.points());

  std::printf("suite: all variants on one shared pool (%zu workers)\n\n",
              pool.size());
  tcw::Table summary({"K", "controlled", "fcfs", "lcfs", "random"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    summary.add_row({tcw::format_fixed(grid[i], 1),
                     tcw::format_fixed(points[0][i].p_loss, 5),
                     tcw::format_fixed(points[1][i].p_loss, 5),
                     tcw::format_fixed(points[2][i].p_loss, 5),
                     tcw::format_fixed(points[3][i].p_loss, 5)});
  }
  summary.write_pretty(std::cout);

  for (std::size_t v = 0; v < variants.size(); ++v) {
    tcw::Table table({"K", "p_loss", "ci95", "mean_wait", "sched",
                      "utilization"});
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const tcw::net::SweepPoint& p = points[v][i];
      table.add_row({tcw::format_fixed(grid[i], 1),
                     tcw::format_fixed(p.p_loss, 5),
                     tcw::format_fixed(p.ci95, 5),
                     tcw::format_fixed(p.mean_wait, 2),
                     tcw::format_fixed(p.mean_scheduling, 3),
                     tcw::format_fixed(p.utilization, 4)});
    }
    const std::string path = variant_csv_path(csv, variants[v].name);
    if (!table.save_csv(path)) {
      std::fprintf(stderr, "failed to write %s\n", path.c_str());
      return 1;
    }
    std::printf("csv: %s\n", path.c_str());
  }

  std::printf("\nsweep scheduler: threads=%u jobs=%zu wall=%.3fs "
              "jobs_per_sec=%.2f worker_utilization=%.2f\n",
              report.threads, report.shards, report.wall_seconds,
              report.shards_per_second, report.worker_utilization);
  std::printf("BENCH_JSON %s\n",
              report.bench_json("sweep_suite").c_str());
  return obs.finish(&report);
}

}  // namespace

int main(int argc, char** argv) {
  std::string variant_name = "controlled";
  double rho = 0.5;
  double m = 25.0;
  double k_min = 25.0;
  double k_max = 400.0;
  long long points = 8;
  double t_end = 150000.0;
  long long reps = 2;
  unsigned long long seed = 1;
  long long threads = 0;
  std::string csv = "sweep.csv";
  bool with_analytic = true;
  bool suite = false;
  tcw::bench::ObsOptions obs_opts;

  tcw::Flags flags("sweep_tool", "Sweep p(loss) vs K for any variant");
  flags.add("variant", &variant_name,
            "controlled | fcfs | lcfs | random");
  flags.add("suite", &suite,
            "sweep ALL variants as one scheduled job graph on a shared "
            "pool; writes one CSV per variant");
  flags.add("rho", &rho, "offered load rho' = lambda*M");
  flags.add("m", &m, "message length M in slots");
  flags.add("k-min", &k_min, "smallest time constraint");
  flags.add("k-max", &k_max, "largest time constraint");
  flags.add("points", &points, "grid points");
  flags.add("t-end", &t_end, "simulated slots per replication");
  flags.add("reps", &reps, "replications per point");
  flags.add("seed", &seed, "base RNG seed");
  flags.add("threads", &threads,
            "sweep worker threads (0 = all hardware threads)");
  flags.add("csv", &csv, "CSV output path");
  flags.add("analytic", &with_analytic,
            "also evaluate the analytic model where available");
  tcw::bench::register_obs_flags(flags, obs_opts);
  if (!flags.parse(argc, argv)) return 1;

  tcw::net::ProtocolVariant variant = tcw::net::ProtocolVariant::Controlled;
  if (variant_name == "controlled") {
    variant = tcw::net::ProtocolVariant::Controlled;
  } else if (variant_name == "fcfs") {
    variant = tcw::net::ProtocolVariant::FcfsNoDiscard;
  } else if (variant_name == "lcfs") {
    variant = tcw::net::ProtocolVariant::LcfsNoDiscard;
  } else if (variant_name == "random") {
    variant = tcw::net::ProtocolVariant::RandomNoDiscard;
  } else if (!suite) {
    std::fprintf(stderr, "unknown variant '%s'\n", variant_name.c_str());
    return 1;
  }

  tcw::net::SweepConfig cfg;
  cfg.offered_load = rho;
  cfg.message_length = m;
  cfg.t_end = t_end;
  cfg.warmup = t_end / 15.0;
  cfg.replications = static_cast<int>(reps);
  cfg.base_seed = seed;
  cfg.threads = static_cast<int>(threads);

  const auto grid = tcw::net::linear_grid(k_min, k_max,
                                          static_cast<std::size_t>(points));
  if (suite) return run_suite(cfg, grid, threads, csv, obs_opts);

  // Standalone sweeps run on a transient pool inside run_sweep: manifest
  // only, no scheduler timeline.
  tcw::bench::ObsSession obs("sweep_tool", obs_opts);
  tcw::net::SweepTiming timing;
  const auto pts = tcw::net::run_sweep({.config = cfg,
                                        .constraints = grid,
                                        .variant = variant,
                                        .timing = &timing})
                       .points();

  tcw::analysis::ProtocolModelConfig model;
  model.offered_load = rho;
  model.message_length = m;

  tcw::Table table({"K", "p_loss", "ci95", "analytic", "mean_wait",
                    "sched", "utilization"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    double analytic = -1.0;
    if (with_analytic) {
      switch (variant) {
        case tcw::net::ProtocolVariant::Controlled:
          analytic =
              tcw::analysis::controlled_loss_at(model, grid[i], 0.2).p_loss;
          break;
        case tcw::net::ProtocolVariant::FcfsNoDiscard:
          analytic = tcw::analysis::fcfs_nodiscard_loss(model, grid[i]);
          break;
        case tcw::net::ProtocolVariant::LcfsNoDiscard:
          analytic = tcw::analysis::lcfs_nodiscard_loss(model, grid[i]);
          break;
        case tcw::net::ProtocolVariant::RandomNoDiscard:
          break;  // no analytic model for random order
      }
    }
    table.add_row({tcw::format_fixed(grid[i], 1),
                   tcw::format_fixed(pts[i].p_loss, 5),
                   tcw::format_fixed(pts[i].ci95, 5),
                   analytic < 0.0 ? "-" : tcw::format_fixed(analytic, 5),
                   tcw::format_fixed(pts[i].mean_wait, 2),
                   tcw::format_fixed(pts[i].mean_scheduling, 3),
                   tcw::format_fixed(pts[i].utilization, 4)});
  }
  std::printf("variant=%s rho'=%.2f M=%.0f (window width %.2f slots)\n\n",
              variant_name.c_str(), rho, m, cfg.heuristic_window_width());
  table.write_pretty(std::cout);
  if (!table.save_csv(csv)) {
    std::fprintf(stderr, "failed to write %s\n", csv.c_str());
    return 1;
  }
  std::printf("\nsweep engine: threads=%u jobs=%zu wall=%.3fs "
              "jobs_per_sec=%.2f\n",
              timing.threads, timing.jobs, timing.wall_seconds,
              timing.jobs_per_second);
  std::printf("csv: %s\n", csv.c_str());
  return obs.finish(nullptr);
}
