// Solve the paper's Section 3 semi-Markov decision model directly: build
// the pseudo-time SMDP, run Howard policy iteration, and print the optimal
// element-(2) width table w*(backlog) alongside the static heuristic.
// Also demonstrates why the paper abandoned the decision model for
// performance evaluation (model size and solve cost vs K).
#include <cstdio>

#include "analysis/splitting.hpp"
#include "smdp/value_iteration.hpp"
#include "smdp/window_model.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  long long deadline = 32;
  double lambda = 0.12;
  long long tx_slots = 5;
  long long samples = 20000;
  tcw::Flags flags("smdp_optimal_policy",
                   "Optimal window widths from the Section 3 SMDP");
  flags.add("k", &deadline, "time constraint K in slots (state space size)");
  flags.add("lambda", &lambda, "arrival rate per slot");
  flags.add("tx", &tx_slots, "transmission + detection slots (M + 1)");
  flags.add("samples", &samples, "Monte-Carlo kernel samples per pair");
  if (!flags.parse(argc, argv)) return 1;

  tcw::smdp::WindowSmdpConfig cfg;
  cfg.deadline = static_cast<std::size_t>(deadline);
  cfg.lambda = lambda;
  cfg.tx_slots = static_cast<std::size_t>(tx_slots);
  cfg.mc_samples = static_cast<std::size_t>(samples);

  std::printf("building SMDP: %lld states, lambda=%.3f, tx=%lld slots...\n",
              deadline + 1, lambda, tx_slots);
  const auto result = tcw::smdp::solve_window_model(cfg);

  std::printf("policy iteration: %d rounds, %llu linear solves over %zu "
              "state-action pairs\n",
              result.stats.iterations,
              static_cast<unsigned long long>(result.stats.linear_solves),
              result.state_actions);
  std::printf("minimal pseudo-loss fraction: %.5f\n\n",
              result.loss_fraction);

  const double heuristic = tcw::analysis::optimal_window_load() / lambda;
  std::printf("optimal initial window width per pseudo-time backlog\n");
  std::printf("(static heuristic nu*/lambda = %.1f slots for comparison)\n\n",
              heuristic);
  std::printf("backlog  width   bar\n");
  for (std::size_t i = 0; i < result.width_per_state.size(); ++i) {
    const std::size_t w = result.width_per_state[i];
    std::printf("%7zu  %5zu   ", i, w);
    for (std::size_t b = 0; b < w; ++b) std::printf("#");
    std::printf("\n");
  }
  std::printf("\n(width 0 = wait: with an empty backlog there is nothing "
              "to probe)\n");

  // Cross-check the gain with relative value iteration.
  const auto model = tcw::smdp::build_window_smdp(cfg);
  const auto vi = tcw::smdp::value_iteration(model, 1e-8, 500000);
  std::printf("value-iteration cross-check: gain in [%.6f, %.6f] "
              "(policy iteration: %.6f)\n",
              vi.gain_lower, vi.gain_upper, result.stats.eval.gain);
  return 0;
}
