// Distributed sensor network ([DSN 82]): periodically sampled sensors
// share one broadcast channel; a reading that misses its fusion deadline
// is useless. Sensors are heterogeneous -- a few fast radars plus many
// slow environmental sensors -- demonstrating mixed arrival processes on
// the finite-station simulator and per-run delay histograms.
#include <cstdio>
#include <memory>

#include "analysis/splitting.hpp"
#include "net/network.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  long long fast_sensors = 4;
  long long slow_sensors = 24;
  double fast_period = 400.0;
  double slow_period = 4000.0;
  double m = 25.0;
  double k = 300.0;
  double t_end = 400000.0;
  tcw::Flags flags("sensor_network",
                   "Deadline-constrained sensor readings over the window "
                   "protocol");
  flags.add("fast", &fast_sensors, "number of fast (radar) sensors");
  flags.add("slow", &slow_sensors, "number of slow sensors");
  flags.add("fast-period", &fast_period, "fast sensor period, slots");
  flags.add("slow-period", &slow_period, "slow sensor period, slots");
  flags.add("m", &m, "reading length M in slots");
  flags.add("k", &k, "fusion deadline K in slots");
  flags.add("t-end", &t_end, "simulated slots");
  if (!flags.parse(argc, argv)) return 1;

  const double lambda = fast_sensors / fast_period + slow_sensors / slow_period;
  const double width = tcw::analysis::optimal_window_load() / lambda;
  std::printf("sensor network: %lld fast + %lld slow sensors, "
              "rho' = %.2f, K = %.0f slots\n\n",
              fast_sensors, slow_sensors, lambda * m, k);

  tcw::net::NetworkConfig cfg;
  cfg.policy = tcw::core::ControlPolicy::optimal(k, width);
  cfg.message_length = m;
  cfg.t_end = t_end;
  cfg.warmup = t_end / 20.0;
  cfg.consistency_check_every = 4096;

  tcw::net::Network net(cfg);
  for (long long i = 0; i < fast_sensors; ++i) {
    // Uniform jitter avoids phase-locking the periodic sources.
    net.add_station(std::make_unique<tcw::chan::PeriodicJitterProcess>(
        fast_period, fast_period * 0.5,
        static_cast<double>(i) * fast_period /
            static_cast<double>(fast_sensors)));
  }
  for (long long i = 0; i < slow_sensors; ++i) {
    net.add_station(std::make_unique<tcw::chan::PeriodicJitterProcess>(
        slow_period, slow_period * 0.5,
        static_cast<double>(i) * slow_period /
            static_cast<double>(slow_sensors)));
  }

  const tcw::net::SimMetrics& metrics = net.run();

  std::printf("readings decided  : %llu\n",
              static_cast<unsigned long long>(metrics.decided()));
  std::printf("fresh at fusion   : %.2f%%\n",
              100.0 * (1.0 - metrics.p_loss()));
  std::printf("mean/max wait     : %.1f / %.1f slots\n",
              metrics.wait_delivered.mean(), metrics.wait_delivered.max());
  std::printf("pseudo backlog    : %.1f slots (mean at decision epochs)\n",
              metrics.pseudo_backlog.mean());
  std::printf("channel breakdown : %.1f%% payload, %.1f%% probes idle, "
              "%.1f%% collisions\n",
              100.0 * metrics.usage.utilization(),
              100.0 * metrics.usage.idle_slots() /
                  metrics.usage.total_slots(),
              100.0 * metrics.usage.collision_slots() /
                  metrics.usage.total_slots());
  std::printf("stations consistent: %s\n",
              net.stations_consistent() ? "yes" : "NO (bug!)");
  return 0;
}
