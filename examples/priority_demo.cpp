// Mixed-criticality traffic (paper Section 5 extension): interactive
// voice packets with a tight playout deadline share the channel with bulk
// sensor data that merely needs to arrive eventually. The weighted
// round-robin over windowing processes gives the operator a single dial
// between the two classes' losses.
#include <cstdio>

#include "net/priority.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  double voice_rate = 0.012;
  double data_rate = 0.012;
  double m = 25.0;
  double k_voice = 75.0;
  double k_data = 900.0;
  long long voice_weight = 3;
  long long data_weight = 1;
  double t_end = 250000.0;
  tcw::Flags flags("priority_demo",
                   "Voice + data classes over the controlled protocol");
  flags.add("voice-rate", &voice_rate, "voice arrivals per slot");
  flags.add("data-rate", &data_rate, "data arrivals per slot");
  flags.add("m", &m, "message length M in slots");
  flags.add("k-voice", &k_voice, "voice playout deadline");
  flags.add("k-data", &k_data, "data staleness deadline");
  flags.add("voice-weight", &voice_weight, "voice windowing processes per cycle");
  flags.add("data-weight", &data_weight, "data windowing processes per cycle");
  flags.add("t-end", &t_end, "simulated slots");
  if (!flags.parse(argc, argv)) return 1;

  tcw::net::PriorityConfig cfg;
  tcw::net::PriorityClassSpec voice;
  voice.deadline = k_voice;
  voice.arrival_rate = voice_rate;
  voice.weight = static_cast<std::uint32_t>(voice_weight);
  tcw::net::PriorityClassSpec data;
  data.deadline = k_data;
  data.arrival_rate = data_rate;
  data.weight = static_cast<std::uint32_t>(data_weight);
  cfg.classes = {voice, data};
  cfg.message_length = m;
  cfg.t_end = t_end;
  cfg.warmup = t_end / 15.0;

  std::printf("priority demo: rho'_total = %.2f, weights voice:data = "
              "%lld:%lld\n\n",
              (voice_rate + data_rate) * m, voice_weight, data_weight);

  tcw::net::PrioritySimulator sim(cfg);
  const auto& metrics = sim.run();

  const char* names[] = {"voice", "data"};
  const double deadlines[] = {k_voice, k_data};
  for (std::size_t c = 0; c < 2; ++c) {
    const auto& m_c = metrics[c];
    std::printf("%s (K = %.0f):\n", names[c], deadlines[c]);
    std::printf("  on time      : %.2f%%  (%llu of %llu)\n",
                100.0 * (1.0 - m_c.p_loss()),
                static_cast<unsigned long long>(m_c.delivered),
                static_cast<unsigned long long>(m_c.decided()));
    std::printf("  wait p50/p90 : %.1f / %.1f slots\n",
                m_c.wait_p50.value(), m_c.wait_p90.value());
    std::printf("  mean backlog : %.1f slots of pseudo time\n\n",
                m_c.pseudo_backlog.mean());
  }
  std::printf("try --voice-weight 1 --data-weight 3 to see the dial move "
              "the other way.\n");
  return 0;
}
