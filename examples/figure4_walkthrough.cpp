// A text-mode reproduction of the paper's Figures 1 and 4: step through
// the controlled window protocol's operation on a small workload and
// narrate every probe -- the window examined, the channel outcome, the
// splits after collisions, and how t_past advances as time is resolved.
//
//   $ ./figure4_walkthrough [--rho 0.9] [--m 6] [--k 60] [--steps 40]
#include <cstdio>
#include <memory>
#include <set>

#include "analysis/splitting.hpp"
#include "chan/arrivals.hpp"
#include "core/controller.hpp"
#include "sim/rng.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  double rho = 0.9;
  double m = 6.0;
  double k = 60.0;
  long long steps = 40;
  unsigned long long seed = 12;
  tcw::Flags flags("figure4_walkthrough",
                   "Narrated probe-by-probe protocol trace (paper Fig. 4)");
  flags.add("rho", &rho, "offered load rho' = lambda*M");
  flags.add("m", &m, "message length M in slots");
  flags.add("k", &k, "time constraint K in slots");
  flags.add("steps", &steps, "probe steps to narrate");
  flags.add("seed", &seed, "workload seed");
  if (!flags.parse(argc, argv)) return 1;

  const double lambda = rho / m;
  const double width = tcw::analysis::optimal_window_load() / lambda;
  tcw::core::WindowController ctrl(
      tcw::core::ControlPolicy::optimal(k, width));
  tcw::chan::PoissonProcess arrivals(lambda);
  tcw::sim::Rng rng(seed);

  std::printf("controlled window protocol, probe by probe\n");
  std::printf("(rho'=%.2f, M=%.0f, K=%.0f, window width %.1f slots; "
              "'#' marks arrivals awaiting service)\n\n",
              rho, m, k, width);
  std::printf("%8s  %-22s %-9s %8s  %s\n", "time", "window probed",
              "outcome", "t_past", "pending arrivals");

  std::multiset<double> pending;
  double next_arrival = arrivals.next(rng);
  double now = 20.0;  // start with a little history to examine

  for (long long step = 0; step < steps; ++step) {
    while (next_arrival <= now) {
      pending.insert(next_arrival);
      next_arrival = arrivals.next(rng);
    }
    // Element (4): drop what the controller has aged out.
    const bool fresh = !ctrl.in_process();
    const auto window = ctrl.next_probe(now);
    while (!pending.empty() && *pending.begin() < ctrl.floor()) {
      pending.erase(pending.begin());
    }
    if (!window) {
      std::printf("%8.2f  %-22s %-9s %8.2f\n", now, "(nothing unresolved)",
                  "idle", ctrl.t_past(now));
      now += 1.0;
      continue;
    }

    std::size_t in_window = 0;
    for (auto it = pending.lower_bound(window->lo);
         it != pending.end() && *it < window->hi; ++it) {
      ++in_window;
    }

    char desc[64];
    std::snprintf(desc, sizeof desc, "[%7.2f, %7.2f)", window->lo,
                  window->hi);
    const char* outcome;
    double advance;
    if (in_window == 0) {
      outcome = "silence";
      ctrl.on_feedback(tcw::core::Feedback::Idle);
      advance = 1.0;
    } else if (in_window == 1) {
      outcome = "SUCCESS";
      const auto it = pending.lower_bound(window->lo);
      pending.erase(it);
      ctrl.on_feedback(tcw::core::Feedback::Success);
      advance = m + 1.0;
    } else {
      outcome = "collision";
      ctrl.on_feedback(tcw::core::Feedback::Collision);
      advance = 1.0;
    }

    std::printf("%8.2f  %-22s %-9s %8.2f  ", now, desc, outcome,
                ctrl.t_past(now));
    for (const double a : pending) {
      if (a >= now - k) std::printf("#%.1f ", a);
    }
    if (fresh && step > 0) std::printf(" <- new windowing process");
    std::printf("\n");
    now += advance;
  }
  std::printf("\nReading the trace: a collision is followed by probes of\n"
              "ever-narrower older halves until one arrival is isolated\n"
              "(SUCCESS), after which t_past jumps to the start of the\n"
              "still-unresolved remainder -- exactly the evolution the\n"
              "paper's Figure 4 illustrates.\n");
  return 0;
}
