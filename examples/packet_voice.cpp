// Packetized voice over a multiple-access channel -- the application the
// paper's introduction motivates ([Cohen 77]). A population of talkers
// alternates between talkspurts and silences; during a talkspurt a station
// emits one voice packet per packetization interval. Voice tolerates a few
// percent of packet loss but a packet older than the playout deadline K is
// worthless, so the controlled window protocol's sender discard keeps the
// channel from wasting time on dead packets.
//
// This example uses the finite-station Network simulator (one protocol
// controller per station, driven only by channel feedback) and compares
// the controlled protocol against the FCFS-no-discard baseline.
#include <cstdio>
#include <memory>

#include "analysis/splitting.hpp"
#include "net/network.hpp"
#include "util/flags.hpp"

namespace {

tcw::net::SimMetrics run_voice(bool controlled, std::size_t talkers,
                               double k, double m, double t_end,
                               double mean_on, double mean_off,
                               double packet_period) {
  // Aggregate packet rate while ON, averaged over the ON/OFF cycle.
  const double per_station_rate =
      (mean_on / (mean_on + mean_off)) / packet_period;
  const double lambda = per_station_rate * static_cast<double>(talkers);
  const double width = tcw::analysis::optimal_window_load() / lambda;

  tcw::net::NetworkConfig cfg;
  cfg.policy = controlled
                   ? tcw::core::ControlPolicy::optimal(k, width)
                   : tcw::core::ControlPolicy::fcfs_baseline(k, width);
  cfg.message_length = m;
  cfg.t_end = t_end;
  cfg.warmup = t_end / 20.0;
  cfg.consistency_check_every = 4096;

  tcw::net::Network net(cfg);
  for (std::size_t i = 0; i < talkers; ++i) {
    net.add_station(std::make_unique<tcw::chan::OnOffVoiceProcess>(
        mean_on, mean_off, packet_period));
  }
  tcw::net::SimMetrics metrics = net.run();
  if (!net.stations_consistent()) {
    std::fprintf(stderr, "station state diverged -- protocol bug!\n");
  }
  return metrics;
}

}  // namespace

int main(int argc, char** argv) {
  // Defaults loosely follow 1980s packet voice on a 10 Mb/s bus with
  // tau ~ 10 us: 500-slot (5 ms) packetization, 1:1.5 talkspurt/silence,
  // and a 2000-slot (20 ms) playout deadline. Packet length M = 25 slots.
  long long talkers = 160;
  double m = 25.0;
  double k = 800.0;
  double mean_on = 40000.0;
  double mean_off = 60000.0;
  double packet_period = 2000.0;
  double t_end = 300000.0;
  tcw::Flags flags("packet_voice",
                   "Talkspurt voice traffic over the window protocol");
  flags.add("talkers", &talkers, "number of voice stations");
  flags.add("m", &m, "packet length M in slots");
  flags.add("k", &k, "playout deadline K in slots");
  flags.add("mean-on", &mean_on, "mean talkspurt length in slots");
  flags.add("mean-off", &mean_off, "mean silence length in slots");
  flags.add("packet-period", &packet_period,
            "slots between packets inside a talkspurt");
  flags.add("t-end", &t_end, "simulated slots");
  if (!flags.parse(argc, argv)) return 1;

  const double per_station_rate =
      (mean_on / (mean_on + mean_off)) / packet_period;
  const double load = per_station_rate * talkers * m;
  std::printf("packet voice: %lld talkers, offered load rho' = %.2f, "
              "deadline K = %.0f slots\n\n",
              talkers, load, k);

  const auto controlled =
      run_voice(true, static_cast<std::size_t>(talkers), k, m, t_end,
                mean_on, mean_off, packet_period);
  const auto baseline =
      run_voice(false, static_cast<std::size_t>(talkers), k, m, t_end,
                mean_on, mean_off, packet_period);

  std::printf("%-28s %14s %14s\n", "", "controlled", "fcfs-no-discard");
  std::printf("%-28s %13.2f%% %13.2f%%\n", "packets on time",
              100.0 * (1.0 - controlled.p_loss()),
              100.0 * (1.0 - baseline.p_loss()));
  std::printf("%-28s %14.2f %14.2f\n", "mean wait (slots)",
              controlled.wait_delivered.mean(),
              baseline.wait_delivered.mean());
  std::printf("%-28s %14.2f %14.2f\n", "max wait (slots)",
              controlled.wait_delivered.max(),
              baseline.wait_delivered.max());
  std::printf("%-28s %13.1f%% %13.1f%%\n", "channel payload",
              100.0 * controlled.usage.utilization(),
              100.0 * baseline.usage.utilization());
  std::printf("\nA 1%%-5%% voice loss budget is %s by the controlled "
              "protocol here.\n",
              controlled.p_loss() < 0.05 ? "met" : "NOT met");
  return 0;
}
