// Quickstart: simulate the controlled time-window protocol on a shared
// broadcast channel and print the headline metric -- the fraction of
// messages delivered within the time constraint K.
//
//   $ ./quickstart [--rho 0.5] [--m 25] [--k 75]
//
// Walkthrough:
//  1. Pick the workload: aggregate Poisson arrivals with offered load
//     rho' = lambda * M (M = message length in slots of the channel's
//     end-to-end propagation delay tau).
//  2. Build the Theorem-1 optimal control policy: window placed at the
//     oldest surviving instant, older half probed first, messages older
//     than K discarded at the sender. Element (2), the window width, uses
//     the paper's heuristic nu*/lambda.
//  3. Run the infinite-population simulator and inspect the metrics.
#include <cstdio>
#include <memory>

#include "analysis/loss_model.hpp"
#include "analysis/splitting.hpp"
#include "net/aggregate_sim.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  double rho = 0.5;
  double m = 25.0;
  double k = 75.0;
  double t_end = 200000.0;
  tcw::Flags flags("quickstart", "Minimal controlled-window-protocol run");
  flags.add("rho", &rho, "offered load rho' = lambda * M");
  flags.add("m", &m, "message length M in slots");
  flags.add("k", &k, "time constraint K in slots");
  flags.add("t-end", &t_end, "simulated slots");
  if (!flags.parse(argc, argv)) return 1;

  // 1. Workload.
  const double lambda = rho / m;
  auto arrivals = std::make_unique<tcw::chan::PoissonProcess>(lambda);

  // 2. The optimal control policy (Theorem 1 + heuristic element 2).
  const double width = tcw::analysis::optimal_window_load() / lambda;
  tcw::net::AggregateConfig cfg;
  cfg.policy = tcw::core::ControlPolicy::optimal(k, width);
  cfg.message_length = m;
  cfg.t_end = t_end;
  cfg.warmup = t_end / 20.0;
  cfg.record_wait_histogram = true;

  // 3. Simulate.
  tcw::net::AggregateSimulator sim(cfg, std::move(arrivals));
  const tcw::net::SimMetrics& metrics = sim.run();

  std::printf("controlled window protocol  rho'=%.2f  M=%.0f  K=%.0f\n",
              rho, m, k);
  std::printf("  messages decided        : %llu\n",
              static_cast<unsigned long long>(metrics.decided()));
  std::printf("  delivered within K      : %.2f%%\n",
              100.0 * (1.0 - metrics.p_loss()));
  std::printf("  lost (sender discard)   : %llu\n",
              static_cast<unsigned long long>(metrics.lost_sender));
  std::printf("  lost (late at receiver) : %llu\n",
              static_cast<unsigned long long>(metrics.lost_receiver));
  std::printf("  mean delivered wait     : %.2f slots\n",
              metrics.wait_delivered.mean());
  std::printf("  p90 delivered wait      : %.2f slots\n",
              metrics.wait_hist.quantile(0.9));
  std::printf("  mean scheduling overhead: %.2f slots/message\n",
              metrics.scheduling.mean());
  std::printf("  channel utilization     : %.1f%% payload, %.1f%% idle, "
              "%.1f%% collisions\n",
              100.0 * metrics.usage.utilization(),
              100.0 * metrics.usage.idle_slots() /
                  metrics.usage.total_slots(),
              100.0 * metrics.usage.collision_slots() /
                  metrics.usage.total_slots());

  // Compare with the paper's analytic model (eq. 4.7 + iteration in K).
  tcw::analysis::ProtocolModelConfig model;
  model.offered_load = rho;
  model.message_length = m;
  const auto analytic = tcw::analysis::controlled_loss_at(model, k, 0.2);
  std::printf("  analytic p(loss)        : %.4f (simulated %.4f)\n",
              analytic.p_loss, metrics.p_loss());
  return 0;
}
